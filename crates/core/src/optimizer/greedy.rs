//! Single-block enumeration over *linear aggregate join trees* with the
//! greedy conservative heuristic (paper Section 5.2, after \[CS94\]).
//!
//! The execution space extends [SAC+79]'s linear join orders: "we will
//! consider all linear orderings of joins and group-by nodes ... some or
//! all of the joins may succeed execution of the group-by". At each DP
//! extension step the heuristic considers, besides the plain
//!
//! 1. `joinplan(optPlan(Sⱼ), Rⱼ)`,
//!
//! an early application of the block's group-by (whenever semantically
//! correct):
//!
//! 2. `joinplan(G(optPlan(Sⱼ)), Rⱼ)` — invariant grouping — and
//!    `joinplan(G₂(optPlan(Sⱼ)), Rⱼ)` with a *partial* `G₂` — simple
//!    coalescing grouping.
//!
//! "Next, we choose only one of the plans in (1) and (2). If Plan (2) is
//! cheaper and if the width of the computed relation corresponding to
//! Plan (2) is no more than that of Plan (1), then Plan (2) is chosen."
//! Because the grouped plan has no more tuples and no more width, and
//! the cost model is IO-only, the chosen plan is never worse — the
//! heuristic preserves the never-worse guarantee while keeping one plan
//! per subset.

use crate::cost::CardEstimator;
use crate::governor::ResourceGovernor;
use crate::optimizer::dp::{DpEntry, DpItem};
use crate::optimizer::stats::SearchStats;
use crate::optimizer::OptimizerConfig;
use crate::plan::{GroupBySpec, PartialAggSpec, PartialGroupSpec, Plan};
use crate::transform::props::output_key;
use aggview_common::{AggRef, AggViewError, Col, Predicate, Result};
use aggview_storage::Catalog;
use std::collections::{BTreeSet, HashMap};

/// A single-block query: items to join, conjunctive predicates, an
/// optional group-by, and what the block must output.
#[derive(Debug, Clone)]
pub struct BlockQuery {
    /// Leaves (scans or already-planned view blocks).
    pub items: Vec<DpItem>,
    /// Multi-item predicates (single-item predicates belong in the
    /// leaves — scan filters or view HAVINGs).
    pub preds: Vec<Predicate>,
    /// The block's group-by, if any (HAVING included in the spec).
    pub group: Option<GroupBySpec>,
    /// The block's output layout.
    pub project: Vec<Col>,
}

/// Group-by progress of a partial plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GState {
    /// Group-by not yet applied.
    Raw,
    /// Group-by (and HAVING) already applied early.
    Grouped,
    /// A partial group-by applied; the coalescing group-by is pending.
    Partial,
}

#[derive(Debug, Clone)]
struct Entry {
    plan: Plan,
    cost: f64,
    state: GState,
}

/// Optimize a single block over the linear-aggregate-join-tree space,
/// without resource limits.
pub fn optimize_block(
    q: &BlockQuery,
    est: &CardEstimator<'_>,
    catalog: &Catalog,
    config: &OptimizerConfig,
    stats: &mut SearchStats,
) -> Result<DpEntry> {
    optimize_block_governed(
        q,
        est,
        catalog,
        config,
        stats,
        &ResourceGovernor::unlimited(),
    )
}

/// Optimize a single block under a [`ResourceGovernor`]: every subset
/// extension checks cancellation/deadline and charges the search budget,
/// so an exhausted budget surfaces as `ResourceExhausted` at the next
/// enumeration boundary (callers degrade to the traditional plan).
pub fn optimize_block_governed(
    q: &BlockQuery,
    est: &CardEstimator<'_>,
    catalog: &Catalog,
    config: &OptimizerConfig,
    stats: &mut SearchStats,
    gov: &ResourceGovernor,
) -> Result<DpEntry> {
    let n = q.items.len();
    if n == 0 {
        return Err(AggViewError::Optimize("empty block".into()));
    }
    if n > 24 {
        return Err(AggViewError::Optimize(format!(
            "block too large for exhaustive enumeration: {n} items"
        )));
    }
    let full: u64 = (1u64 << n) - 1;
    let outsets: Vec<BTreeSet<Col>> = q
        .items
        .iter()
        .map(|it| it.plan.output_cols().iter().copied().collect())
        .collect();
    let keys: Vec<Option<Vec<Col>>> = q
        .items
        .iter()
        .map(|it| output_key(&it.plan, catalog))
        .collect::<Result<_>>()?;
    let connected_graph = crate::optimizer::dp::graph_connected(&outsets, &q.preds);
    // Columns the block must deliver upward, before the group-by's
    // perspective: the group-by's own needs plus the final projection.
    let mut required: BTreeSet<Col> = q.project.iter().copied().collect();
    if let Some(g) = &q.group {
        required.extend(g.group_cols.iter().copied());
        for a in &g.aggs {
            required.extend(a.cols_used());
        }
        for h in &g.having {
            required.extend(h.cols_used().into_iter().filter(|c| !c.is_agg()));
        }
    }

    let ctx = Ctx {
        q,
        est,
        config,
        gov,
        outsets: &outsets,
        keys: &keys,
        required: &required,
        connected_graph,
    };

    let mut memo: HashMap<u64, Entry> = HashMap::new();
    for (i, it) in q.items.iter().enumerate() {
        memo.insert(
            1u64 << i,
            Entry {
                plan: it.plan.clone(),
                cost: it.props.cost,
                state: GState::Raw,
            },
        );
        stats.memo_entries += 1;
        gov.charge_memo(1)?;
    }

    for size in 2..=n {
        let mut subset = (1u64 << size) - 1;
        while subset <= full {
            extend(&ctx, subset, &mut memo, stats)?;
            let c = subset & subset.wrapping_neg();
            let r = subset + c;
            if r == 0 {
                break;
            }
            subset = (((r ^ subset) >> 2) / c) | r;
        }
    }

    let entry = memo
        .remove(&full)
        .ok_or_else(|| AggViewError::Optimize("block enumeration failed".into()))?;
    let entry = finish(&ctx, entry, stats)?;

    // Materialized extents are one more costed access path for the
    // whole block: take the extent plan only when strictly cheaper, so
    // the never-worse guarantee carries over unchanged.
    if config.use_matviews {
        if let Some(alt) = crate::matview::best_extent_entry(q, est, catalog, stats, gov)? {
            if alt.props.cost < entry.props.cost {
                return Ok(alt);
            }
        }
    }
    Ok(entry)
}

struct Ctx<'a, 'b> {
    q: &'a BlockQuery,
    est: &'a CardEstimator<'b>,
    config: &'a OptimizerConfig,
    gov: &'a ResourceGovernor,
    outsets: &'a [BTreeSet<Col>],
    keys: &'a [Option<Vec<Col>>],
    required: &'a BTreeSet<Col>,
    connected_graph: bool,
}

impl Ctx<'_, '_> {
    fn avail(&self, subset: u64) -> BTreeSet<Col> {
        (0..self.q.items.len())
            .filter(|i| subset & (1 << i) != 0)
            .flat_map(|i| self.outsets[i].iter().copied())
            .collect()
    }

    /// Predicates that become evaluable exactly when `new` joins `have`.
    fn newly_evaluable(&self, have: &BTreeSet<Col>, new: &BTreeSet<Col>) -> Vec<Predicate> {
        self.q
            .preds
            .iter()
            .filter(|p| {
                let cols = p.cols_used();
                cols.iter().all(|c| have.contains(c) || new.contains(c))
                    && !cols.iter().all(|c| have.contains(c))
                    && cols.iter().any(|c| new.contains(c))
            })
            .cloned()
            .collect()
    }

    /// Projection for a join whose output columns are `avail`: required
    /// columns plus operands of still-pending predicates.
    fn projection_for(&self, avail: &BTreeSet<Col>) -> Vec<Col> {
        let mut needed: BTreeSet<Col> = self
            .required
            .iter()
            .filter(|c| avail.contains(c))
            .copied()
            .collect();
        for p in &self.q.preds {
            if !p.cols_used().iter().all(|c| avail.contains(c)) {
                for c in p.cols_used() {
                    if avail.contains(&c) {
                        needed.insert(c);
                    }
                }
            }
        }
        // Partial aggregate states must always flow to the coalescing
        // group-by at the block root.
        for c in avail {
            if c.is_part() {
                needed.insert(*c);
            }
        }
        needed.into_iter().collect()
    }

    /// Columns needed above subset `prior` (required + pending preds).
    fn needed_above(&self, avail_prior: &BTreeSet<Col>) -> BTreeSet<Col> {
        let mut needed: BTreeSet<Col> = self
            .required
            .iter()
            .filter(|c| avail_prior.contains(c))
            .copied()
            .collect();
        for p in &self.q.preds {
            if !p.cols_used().iter().all(|c| avail_prior.contains(c)) {
                for c in p.cols_used() {
                    if avail_prior.contains(&c) {
                        needed.insert(c);
                    }
                }
            }
        }
        needed
    }

    /// Is an *invariant grouping* placement of the block's group-by
    /// legal over subset `prior` (items outside joined afterwards)?
    fn group_placement_ok(&self, prior: u64, prior_plan: &Plan) -> bool {
        let Some(g) = &self.q.group else { return false };
        let avail: BTreeSet<Col> = prior_plan.output_cols().iter().copied().collect();
        // Aggregate arguments must be computed here. Grouping columns may
        // be split: those inside `prior` become the pushed group-by's
        // grouping columns; those belonging to *outside* items are
        // functionally determined by the (mandatory) key join and attach
        // after the group-by — the [YL94] generalization the paper's
        // Section 4.1 builds on.
        for a in &g.aggs {
            if !a.cols_used().iter().all(|c| avail.contains(c)) {
                return false;
            }
        }
        let inside_group: BTreeSet<Col> = g
            .group_cols
            .iter()
            .filter(|c| avail.contains(c))
            .copied()
            .collect();
        // Every outside grouping column must come from some item (not be
        // an unavailable aggregate of this block).
        for c in &g.group_cols {
            if !avail.contains(c) && !self.outsets.iter().any(|o| o.contains(c)) {
                return false;
            }
        }
        if inside_group.is_empty() {
            // Without grouping columns on the prior side, cross
            // predicates cannot reference grouping columns; keep the
            // group-by later.
            return false;
        }
        // HAVING runs at the pushed group-by: it may only read inside
        // grouping columns and the aggregates.
        for h in &g.having {
            for c in h.cols_used() {
                if !c.is_agg() && !inside_group.contains(&c) {
                    return false;
                }
            }
        }
        let group_set = inside_group;
        // Raw columns needed *above the group-by* must survive it:
        // the block's final projection and the operands of predicates
        // still pending. (The group-by's own inputs — aggregate
        // arguments — are consumed here, so `self.required` would be too
        // strict.) Outside grouping columns are produced by later joins.
        let mut above: BTreeSet<Col> = self
            .q
            .project
            .iter()
            .filter(|c| avail.contains(c))
            .copied()
            .collect();
        for p in &self.q.preds {
            if !p.cols_used().iter().all(|c| avail.contains(c)) {
                for c in p.cols_used() {
                    if avail.contains(&c) {
                        above.insert(c);
                    }
                }
            }
        }
        for c in above {
            if !group_set.contains(&c) {
                return false;
            }
        }
        // Conditions per outside item.
        let n = self.q.items.len();
        for o in (0..n).filter(|i| prior & (1 << i) == 0) {
            let out = &self.outsets[o];
            let mut connected = false;
            let mut equated: BTreeSet<Col> = BTreeSet::new();
            for p in &self.q.preds {
                let cols = p.cols_used();
                let touches_o = cols.iter().any(|c| out.contains(c));
                if !touches_o {
                    continue;
                }
                let touches_prior = cols.iter().any(|c| avail.contains(c));
                if touches_prior {
                    connected = true;
                    // Prior-side operands must be grouping columns.
                    for c in &cols {
                        if avail.contains(c) && !group_set.contains(c) {
                            return false;
                        }
                    }
                }
                // Key-coverage evidence from equalities anywhere.
                if let Some((a, b)) = p.as_col_eq_col() {
                    if out.contains(&a) && !out.contains(&b) {
                        equated.insert(a);
                    }
                    if out.contains(&b) && !out.contains(&a) {
                        equated.insert(b);
                    }
                }
            }
            // Connectivity to the rest of the query (directly to prior or
            // to another outside item that itself chains to prior is
            // still a cross product risk — require a predicate at all).
            let touches_anything = connected
                || self
                    .q
                    .preds
                    .iter()
                    .any(|p| p.cols_used().iter().any(|c| out.contains(c)));
            if !touches_anything {
                return false;
            }
            // Each outside item must be joined on a full key so groups
            // are never duplicated.
            match &self.keys[o] {
                Some(key) if key.iter().all(|k| equated.contains(k)) => {}
                _ => return false,
            }
        }
        true
    }

    /// Is a *simple coalescing* partial group-by legal over `prior`?
    fn coalesce_placement_ok(&self, prior: u64, prior_plan: &Plan) -> bool {
        let Some(g) = &self.q.group else { return false };
        if g.aggs.is_empty() {
            return false;
        }
        let avail: BTreeSet<Col> = prior_plan.output_cols().iter().copied().collect();
        g.aggs.iter().all(|a| {
            a.func.is_decomposable() && a.cols_used().iter().all(|c| avail.contains(c))
        }) && prior != (1u64 << self.q.items.len()) - 1
            // Partial states cannot cross a second grouping: every raw
            // column needed above must be representable as a partial
            // grouping column (always true — we group by it).
            && !avail.is_empty()
    }

    /// Is an *eager partial aggregation* (Yan–Larson push-down) legal
    /// over `prior`? Unlike simple coalescing, only the aggregates whose
    /// arguments live entirely inside `prior` are pushed; aggregates on
    /// the partner side stay at the merge, scaled by the carried
    /// per-group count. Every aggregate must classify cleanly as pushed
    /// (arguments available and decomposable) or kept (arguments fully
    /// outside), and at least one must be kept — otherwise simple
    /// coalescing already covers the shape.
    fn eager_placement_ok(&self, prior: u64, prior_plan: &Plan) -> bool {
        let Some(g) = &self.q.group else { return false };
        if g.aggs.is_empty() || prior == (1u64 << self.q.items.len()) - 1 {
            return false;
        }
        let avail: BTreeSet<Col> = prior_plan.output_cols().iter().copied().collect();
        if avail.is_empty() || self.eager_group_cols(g, &avail).is_empty() {
            return false;
        }
        let mut kept = 0usize;
        for a in &g.aggs {
            let cols = a.cols_used();
            if cols.iter().all(|c| avail.contains(c)) {
                // COUNT(*) (no argument columns) always pushes.
                if !a.func.is_decomposable() {
                    return false;
                }
            } else if cols.iter().all(|c| !avail.contains(c)) {
                kept += 1;
            } else {
                // Arguments span both sides: no clean decomposition.
                return false;
            }
        }
        kept >= 1
    }

    /// Pushed grouping keys of an eager node over a subtree producing
    /// `avail`: the block's grouping columns inside the subtree plus the
    /// operands of still-pending (join) predicates — Definition 1's
    /// "grouping columns extended with join keys". Pushed aggregate
    /// arguments are deliberately *not* keys: the partial node consumes
    /// them.
    fn eager_group_cols(&self, g: &GroupBySpec, avail: &BTreeSet<Col>) -> Vec<Col> {
        let mut group_cols: Vec<Col> = Vec::new();
        let mut seen = BTreeSet::new();
        for c in g.group_cols.iter().filter(|c| avail.contains(c)) {
            if seen.insert(*c) {
                group_cols.push(*c);
            }
        }
        for p in &self.q.preds {
            if !p.cols_used().iter().all(|c| avail.contains(c)) {
                for c in p.cols_used() {
                    if avail.contains(&c) && seen.insert(c) {
                        group_cols.push(c);
                    }
                }
            }
        }
        group_cols
    }

    /// Build the eager partial-aggregate node over `prior_plan`: pushed
    /// grouping keys are the block's grouping columns inside `prior`
    /// plus the operands of still-pending (join) predicates, and the
    /// node always carries the duplicate-factor COUNT(*) so the merge
    /// can scale the partner side's duplicate-sensitive aggregates.
    fn make_eager(&self, prior_plan: &Plan) -> Plan {
        let g = self.q.group.as_ref().expect("checked by caller");
        let avail: BTreeSet<Col> = prior_plan.output_cols().iter().copied().collect();
        let spec = PartialAggSpec {
            group_cols: self.eager_group_cols(g, &avail),
            aggs: g
                .aggs
                .iter()
                .enumerate()
                .filter(|(_, a)| a.cols_used().iter().all(|c| avail.contains(c)))
                .map(|(i, a)| (AggRef::new(g.owner, i), a.clone()))
                .collect(),
            count: Some(AggRef::new(g.owner, g.aggs.len())),
        };
        Plan::partial_aggregate_all(prior_plan.clone(), spec)
    }

    /// Build the partial group-by node over `prior_plan`.
    fn make_partial(&self, prior_plan: &Plan) -> Plan {
        let g = self.q.group.as_ref().expect("checked by caller");
        let avail: BTreeSet<Col> = prior_plan.output_cols().iter().copied().collect();
        let mut group_cols: Vec<Col> = Vec::new();
        let mut seen = BTreeSet::new();
        let add = |c: Col, seen: &mut BTreeSet<Col>, out: &mut Vec<Col>| {
            if seen.insert(c) {
                out.push(c);
            }
        };
        for c in g.group_cols.iter().filter(|c| avail.contains(c)) {
            add(*c, &mut seen, &mut group_cols);
        }
        for c in self.needed_above(&avail) {
            add(c, &mut seen, &mut group_cols);
        }
        let spec = PartialGroupSpec {
            group_cols,
            aggs: g
                .aggs
                .iter()
                .enumerate()
                .map(|(i, a)| (AggRef::new(g.owner, i), a.clone()))
                .collect(),
        };
        Plan::partial_group_by_all(prior_plan.clone(), spec)
    }

    /// Build the full group-by node over `plan` and re-project the block
    /// output.
    fn apply_group(&self, plan: Plan) -> Plan {
        let g = self.q.group.as_ref().expect("checked by caller");
        Plan::group_by(plan, g.clone(), self.q.project.clone())
    }
}

fn extend(
    ctx: &Ctx<'_, '_>,
    subset: u64,
    memo: &mut HashMap<u64, Entry>,
    stats: &mut SearchStats,
) -> Result<()> {
    ctx.gov.check_interrupt()?;
    let n = ctx.q.items.len();
    let members: Vec<usize> = (0..n).filter(|i| subset & (1 << i) != 0).collect();

    // Prefer connected extensions (no cross products when avoidable).
    let connected: Vec<usize> = members
        .iter()
        .copied()
        .filter(|&last| {
            let prior_cols = ctx.avail(subset & !(1u64 << last));
            !ctx.newly_evaluable(&prior_cols, &ctx.outsets[last])
                .is_empty()
        })
        .collect();
    let candidates: &[usize] = if connected.is_empty() && !ctx.connected_graph {
        &members
    } else {
        &connected
    };

    let mut best: Option<Entry> = None;
    for &last in candidates {
        let prior = subset & !(1u64 << last);
        let Some(sub) = memo.get(&prior).cloned() else {
            continue;
        };
        let prior_cols: BTreeSet<Col> = sub.plan.output_cols().iter().copied().collect();
        let join_preds = ctx.newly_evaluable(&prior_cols, &ctx.outsets[last]);
        let actual_avail: BTreeSet<Col> = prior_cols
            .iter()
            .copied()
            .chain(ctx.outsets[last].iter().copied())
            .collect();
        let project = ctx.projection_for(&actual_avail);

        // Plan (1): plain extension.
        let plain = Plan::join(
            sub.plan.clone(),
            ctx.q.items[last].plan.clone(),
            join_preds.clone(),
            project.clone(),
        );
        stats.plans_built += 1;
        ctx.gov.charge_plans(1)?;
        let plain_props = ctx.est.cost_plan(&plain)?;
        let mut chosen = Entry {
            plan: plain,
            cost: plain_props.cost,
            state: sub.state,
        };

        // Plans (2)/(2'): early group-by, only from a Raw prefix and only
        // when push-down is enabled.
        if sub.state == GState::Raw && ctx.config.push_down && ctx.q.group.is_some() {
            let mut alternatives: Vec<(Plan, GState)> = Vec::new();
            if ctx.group_placement_ok(prior, &sub.plan) {
                alternatives.push((ctx.apply_group_inline(&sub.plan), GState::Grouped));
            }
            if ctx.coalesce_placement_ok(prior, &sub.plan) {
                alternatives.push((ctx.make_partial(&sub.plan), GState::Partial));
            }
            if ctx.config.use_eager_agg && ctx.eager_placement_ok(prior, &sub.plan) {
                alternatives.push((ctx.make_eager(&sub.plan), GState::Partial));
            }
            for (early, state) in alternatives {
                stats.groupby_placements += 1;
                // Join predicates recomputed against the grouped output.
                let early_cols: BTreeSet<Col> = early.output_cols().iter().copied().collect();
                let jp = ctx.newly_evaluable(&early_cols, &ctx.outsets[last]);
                let early_avail: BTreeSet<Col> = early_cols
                    .iter()
                    .copied()
                    .chain(ctx.outsets[last].iter().copied())
                    .collect();
                let early_project = ctx.projection_for(&early_avail);
                let candidate =
                    Plan::join(early, ctx.q.items[last].plan.clone(), jp, early_project);
                stats.plans_built += 1;
                ctx.gov.charge_plans(1)?;
                let props = ctx.est.cost_plan(&candidate)?;
                // Greedy conservative rule. The paper compares cost and
                // *width*; since a grouped plan never has more tuples
                // than the plain plan, comparing total bytes
                // (cardinality × width) subsumes the width rule whenever
                // it fires — and extends it to partial aggregation,
                // whose state columns widen rows while collapsing
                // cardinality. Adopt the early-group-by plan only when
                // it is locally cheaper and produces no more data.
                // Peak intermediate bytes joins the rule: an early
                // aggregation that would hold a larger working set than
                // the plain join (e.g. a wide partial-state table) is
                // rejected even when its IO cost is lower.
                let plain_bytes = plain_props.card * plain_props.width;
                let cand_bytes = props.card * props.width;
                if props.cost < chosen.cost
                    && cand_bytes <= plain_bytes + 1e-6
                    && props.peak_bytes <= plain_props.peak_bytes + 1e-6
                {
                    chosen = Entry {
                        plan: candidate,
                        cost: props.cost,
                        state,
                    };
                }
            }
        }

        if best.as_ref().is_none_or(|b| chosen.cost < b.cost) {
            best = Some(chosen);
        }
    }
    if let Some(b) = best {
        memo.insert(subset, b);
        stats.memo_entries += 1;
        ctx.gov.charge_memo(1)?;
    }
    Ok(())
}

impl Ctx<'_, '_> {
    /// Group-by applied *inline* (not at the block root): projects its
    /// grouping columns and aggregates for the joins above.
    fn apply_group_inline(&self, plan: &Plan) -> Plan {
        let g = self.q.group.as_ref().expect("checked by caller");
        // Grouping columns restricted to what the subtree produces; the
        // remaining (functionally determined) grouping columns attach via
        // the later key joins — see `group_placement_ok`.
        let avail: BTreeSet<Col> = plan.output_cols().iter().copied().collect();
        let spec = GroupBySpec {
            owner: g.owner,
            group_cols: g
                .group_cols
                .iter()
                .filter(|c| avail.contains(c))
                .copied()
                .collect(),
            aggs: g.aggs.clone(),
            having: g.having.clone(),
        };
        Plan::group_by_all(plan.clone(), spec)
    }
}

/// Complete the block: apply the group-by if still pending, re-project.
fn finish(ctx: &Ctx<'_, '_>, entry: Entry, stats: &mut SearchStats) -> Result<DpEntry> {
    let plan = match (&ctx.q.group, entry.state) {
        (None, _) => reproject(entry.plan, &ctx.q.project)?,
        (Some(_), GState::Raw) => {
            stats.groupby_placements += 1;
            ctx.apply_group(entry.plan)
        }
        (Some(_), GState::Partial) => {
            // The coalescing group-by: same spec; the executor merges the
            // partial states it finds in its input.
            ctx.apply_group(entry.plan)
        }
        (Some(_), GState::Grouped) => reproject(entry.plan, &ctx.q.project)?,
    };
    let props = ctx.est.cost_plan(&plan)?;
    Ok(DpEntry { plan, props })
}

/// Narrow (or reorder) a plan's output to `project`.
fn reproject(plan: Plan, project: &[Col]) -> Result<Plan> {
    let avail: BTreeSet<Col> = plan.output_cols().iter().copied().collect();
    for c in project {
        if !avail.contains(c) {
            return Err(AggViewError::Optimize(format!(
                "block cannot produce required column {c}"
            )));
        }
    }
    Ok(plan.with_project(project.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::plan::all_cols;
    use crate::query::examples::{dept, emp, example2_query};
    use crate::query::QueryEnv;
    use aggview_common::{AggFunc, AggSpec, CmpOp, Expr, RelId, Value, ViewId};
    use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

    fn setup(n_depts: usize, emps_per_dept: usize) -> (Catalog, QueryEnv) {
        let cat = gen_empdept(&EmpDeptConfig {
            n_depts,
            emps_per_dept,
            ..Default::default()
        })
        .unwrap();
        (cat, QueryEnv::new(vec!["emp".into(), "dept".into()]))
    }

    /// Example 2 as a BlockQuery: G0(emp ⋈ dept) with avg(sal) by dno.
    fn example2_block(_cat: &Catalog, _env: &QueryEnv, est: &CardEstimator<'_>) -> BlockQuery {
        let q = example2_query();
        let e = RelId(0);
        let d = RelId(1);
        let g = q.group.clone().unwrap();
        let items = vec![
            DpItem::new(Plan::scan(e, "emp", vec![], all_cols(e, 5)), est).unwrap(),
            DpItem::new(
                Plan::scan(
                    d,
                    "dept",
                    vec![Predicate::cmp_const(
                        Col::base(d, dept::BUDGET),
                        CmpOp::Lt,
                        Value::Float(1_000_000.0),
                    )],
                    all_cols(d, 4),
                ),
                est,
            )
            .unwrap(),
        ];
        BlockQuery {
            items,
            preds: vec![Predicate::eq_cols(
                Col::base(e, emp::DNO),
                Col::base(d, dept::DNO),
            )],
            group: Some(GroupBySpec {
                owner: ViewId::Top,
                group_cols: g.group_cols,
                aggs: g.aggs,
                having: vec![],
            }),
            project: vec![Col::base(e, emp::DNO), Col::agg(ViewId::Top, 0)],
        }
    }

    #[test]
    fn block_with_group_by_produces_legal_plan() {
        let (cat, env) = setup(20, 10);
        let est = CardEstimator::new(CostModel::default(), &cat, &env);
        let q = example2_block(&cat, &env, &est);
        let mut stats = SearchStats::default();
        let entry =
            optimize_block(&q, &est, &cat, &OptimizerConfig::default(), &mut stats).unwrap();
        entry.plan.validate(&cat, &env.rel_tables).unwrap();
        assert!(entry.plan.group_by_count() >= 1);
        assert_eq!(
            entry.plan.output_cols(),
            &[Col::base(RelId(0), emp::DNO), Col::agg(ViewId::Top, 0)]
        );
    }

    #[test]
    fn push_down_chosen_when_group_by_is_strongly_reducing() {
        // Many employees per department, tiny memory → aggregating emp
        // before the join saves join IO. Use a small memory budget so the
        // join actually spills on raw emp.
        let (cat, env) = setup(10, 400);
        let model = CostModel {
            io: crate::cost::ops::IoParams {
                mem_pages: 4.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let est = CardEstimator::new(model, &cat, &env);
        let q = example2_block(&cat, &env, &est);
        let mut stats = SearchStats::default();
        let greedy =
            optimize_block(&q, &est, &cat, &OptimizerConfig::default(), &mut stats).unwrap();
        let trad =
            optimize_block(&q, &est, &cat, &OptimizerConfig::traditional(), &mut stats).unwrap();
        assert!(
            greedy.props.cost <= trad.props.cost + 1e-9,
            "greedy {} vs traditional {}",
            greedy.props.cost,
            trad.props.cost
        );
    }

    #[test]
    fn traditional_config_keeps_group_by_at_top() {
        let (cat, env) = setup(10, 10);
        let est = CardEstimator::new(CostModel::default(), &cat, &env);
        let q = example2_block(&cat, &env, &est);
        let mut stats = SearchStats::default();
        let entry =
            optimize_block(&q, &est, &cat, &OptimizerConfig::traditional(), &mut stats).unwrap();
        // Exactly one group-by, at the root.
        assert_eq!(entry.plan.group_by_count(), 1);
        assert!(matches!(entry.plan, Plan::GroupBy { .. }));
    }

    #[test]
    fn no_group_block_is_plain_spj() {
        let (cat, env) = setup(10, 10);
        let est = CardEstimator::new(CostModel::default(), &cat, &env);
        let mut q = example2_block(&cat, &env, &est);
        q.group = None;
        q.project = vec![Col::base(RelId(0), emp::SAL)];
        let mut stats = SearchStats::default();
        let entry =
            optimize_block(&q, &est, &cat, &OptimizerConfig::default(), &mut stats).unwrap();
        entry.plan.validate(&cat, &env.rel_tables).unwrap();
        assert_eq!(entry.plan.group_by_count(), 0);
        assert_eq!(entry.plan.output_cols(), &[Col::base(RelId(0), emp::SAL)]);
    }

    #[test]
    fn grouped_plans_never_beat_raw_unless_cheaper_and_narrower() {
        // With generous memory the join never spills, so early grouping
        // cannot be cheaper; the chosen plan must be the traditional one.
        let (cat, env) = setup(5, 10);
        let model = CostModel {
            io: crate::cost::ops::IoParams {
                mem_pages: 4096.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let est = CardEstimator::new(model, &cat, &env);
        let q = example2_block(&cat, &env, &est);
        let mut s1 = SearchStats::default();
        let mut s2 = SearchStats::default();
        let greedy = optimize_block(&q, &est, &cat, &OptimizerConfig::default(), &mut s1).unwrap();
        let trad =
            optimize_block(&q, &est, &cat, &OptimizerConfig::traditional(), &mut s2).unwrap();
        assert!((greedy.props.cost - trad.props.cost).abs() < 1e-9);
    }

    #[test]
    fn search_stats_grow_with_push_down() {
        let (cat, env) = setup(10, 10);
        let est = CardEstimator::new(CostModel::default(), &cat, &env);
        let q = example2_block(&cat, &env, &est);
        let mut with = SearchStats::default();
        let mut without = SearchStats::default();
        optimize_block(&q, &est, &cat, &OptimizerConfig::default(), &mut with).unwrap();
        optimize_block(
            &q,
            &est,
            &cat,
            &OptimizerConfig::traditional(),
            &mut without,
        )
        .unwrap();
        assert!(with.groupby_placements >= without.groupby_placements);
        assert!(with.total() >= without.total());
    }

    #[test]
    fn empty_block_rejected() {
        let (cat, env) = setup(2, 2);
        let _ = &env;
        let est = CardEstimator::new(CostModel::default(), &cat, &env);
        let q = BlockQuery {
            items: vec![],
            preds: vec![],
            group: None,
            project: vec![],
        };
        let mut stats = SearchStats::default();
        assert!(optimize_block(&q, &est, &cat, &OptimizerConfig::default(), &mut stats).is_err());
    }

    #[test]
    fn coalescing_block_with_sum() {
        // SUM over the emp side: coalescing applicable; with tiny memory
        // the partial aggregation should not be *worse*.
        let (cat, env) = setup(8, 200);
        let model = CostModel {
            io: crate::cost::ops::IoParams {
                mem_pages: 4.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let est = CardEstimator::new(model, &cat, &env);
        let mut q = example2_block(&cat, &env, &est);
        q.group.as_mut().unwrap().aggs = vec![AggSpec::new(
            AggFunc::Sum,
            Expr::col(Col::base(RelId(0), emp::SAL)),
        )];
        let mut stats = SearchStats::default();
        let entry =
            optimize_block(&q, &est, &cat, &OptimizerConfig::default(), &mut stats).unwrap();
        entry.plan.validate(&cat, &env.rel_tables).unwrap();
        let mut s2 = SearchStats::default();
        let trad =
            optimize_block(&q, &est, &cat, &OptimizerConfig::traditional(), &mut s2).unwrap();
        assert!(entry.props.cost <= trad.props.cost + 1e-9);
    }
}
