//! The traditional two-phase optimizer (paper Section 5.1) — the
//! baseline every experiment compares against.
//!
//! "1. Optimize each aggregate view Qi locally using the traditional
//! optimization algorithm for SPJ queries that determines a linear join
//! order. 2. Determine a linear join order among relations in B and
//! relations corresponding to view definitions in Q, treating relations
//! in the latter set as base relations."
//!
//! Implemented as the general algorithm with pull-up and push-down both
//! disabled: each view's only admissible block is the view itself
//! (`W = Vi − V₀i` degenerates to the full view since push-down is
//! off... more precisely the group-by stays at the view root), and the
//! greedy conservative heuristic never fires.

use crate::cost::CostModel;
use crate::governor::ResourceGovernor;
use crate::optimizer::multi_view::{optimize, optimize_governed, Optimized};
use crate::optimizer::OptimizerConfig;
use crate::query::CanonicalQuery;
use aggview_common::Result;
use aggview_storage::Catalog;

/// Optimize with the traditional two-phase strategy.
pub fn optimize_traditional(
    query: &CanonicalQuery,
    catalog: &Catalog,
    model: CostModel,
) -> Result<Optimized> {
    optimize(query, catalog, model, &OptimizerConfig::traditional())
}

/// [`optimize_traditional`] under a [`ResourceGovernor`] (this is the
/// plan the governed optimizer degrades to, so it rarely needs a budget
/// itself, but it still honors cancellation).
pub fn optimize_traditional_governed(
    query: &CanonicalQuery,
    catalog: &Catalog,
    model: CostModel,
    gov: &ResourceGovernor,
) -> Result<Optimized> {
    optimize_governed(query, catalog, model, &OptimizerConfig::traditional(), gov)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::multi_view::optimize as optimize_full;
    use crate::query::examples::example1_query;
    use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

    #[test]
    fn traditional_never_pulls_up() {
        let cat = gen_empdept(&EmpDeptConfig {
            n_depts: 30,
            emps_per_dept: 5,
            ..Default::default()
        })
        .unwrap();
        let q = example1_query();
        let t = optimize_traditional(&q, &cat, CostModel::default()).unwrap();
        assert!(t.pulled.iter().all(Vec::is_empty));
    }

    #[test]
    fn traditional_explores_no_more_than_full() {
        let cat = gen_empdept(&EmpDeptConfig {
            n_depts: 10,
            emps_per_dept: 10,
            ..Default::default()
        })
        .unwrap();
        let q = example1_query();
        let t = optimize_traditional(&q, &cat, CostModel::default()).unwrap();
        let f = optimize_full(
            &q,
            &cat,
            CostModel::default(),
            &crate::optimizer::OptimizerConfig::default(),
        )
        .unwrap();
        assert!(t.stats.total() <= f.stats.total());
        assert!(f.props.cost <= t.props.cost + 1e-6);
    }
}
