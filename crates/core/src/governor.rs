//! Resource governance: budgets, deadlines, and cooperative cancellation.
//!
//! The paper's never-worse guarantee (Section 5) says the
//! transformation-aware optimizer should never lose to the traditional
//! two-phase plan. This module operationalizes that guarantee as a
//! *runtime* property: a [`ResourceGovernor`] carries
//!
//! * a cooperative [`CancellationToken`],
//! * a wall-clock deadline,
//! * a row/byte budget for materialized intermediates, and
//! * an optimizer search budget (max plans built / memo entries),
//!
//! and is threaded through the optimizer's enumeration loops and the
//! executor's operator boundaries. When the optimizer's search budget
//! runs out it does **not** error: the caller degrades to the
//! traditional two-phase plan — the paper's baseline — and records why
//! in an [`OptimizeOutcome`]. Executor-side budgets, by contrast, abort
//! with structured [`AggViewError::ResourceExhausted`] /
//! [`AggViewError::Cancelled`] errors: a partially executed query has
//! no cheaper fallback, only a clean failure.

use aggview_common::{AggViewError, Result};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cooperative cancellation flag, cheaply cloneable across threads.
///
/// Cancellation is *cooperative*: governed loops poll the token at
/// operator/enumeration boundaries and return
/// [`AggViewError::Cancelled`]; nothing is interrupted mid-operation.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    cancelled: Arc<AtomicBool>,
}

impl CancellationToken {
    pub fn new() -> CancellationToken {
        CancellationToken::default()
    }

    /// Request cancellation; all clones observe it.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// `Err(Cancelled)` once [`cancel`](Self::cancel) has been called.
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            Err(AggViewError::Cancelled("query cancelled".into()))
        } else {
            Ok(())
        }
    }
}

/// Declarative resource limits; `None` means unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Wall-clock budget for the whole optimize + execute pipeline.
    pub timeout: Option<Duration>,
    /// Total rows the executor may materialize across all operators.
    pub max_rows: Option<u64>,
    /// Total bytes the executor may materialize across all operators.
    pub max_bytes: Option<u64>,
    /// Optimizer search budget: plans costed during enumeration
    /// (mirrors `SearchStats::plans_built`).
    pub max_plans: Option<u64>,
    /// Optimizer search budget: memo entries kept during enumeration
    /// (mirrors `SearchStats::memo_entries`).
    pub max_memo_entries: Option<u64>,
}

impl ResourceLimits {
    /// No limits at all — the default for ungoverned entry points.
    pub fn unlimited() -> ResourceLimits {
        ResourceLimits::default()
    }

    pub fn with_timeout(mut self, timeout: Duration) -> ResourceLimits {
        self.timeout = Some(timeout);
        self
    }

    pub fn with_max_rows(mut self, rows: u64) -> ResourceLimits {
        self.max_rows = Some(rows);
        self
    }

    pub fn with_max_bytes(mut self, bytes: u64) -> ResourceLimits {
        self.max_bytes = Some(bytes);
        self
    }

    pub fn with_max_plans(mut self, plans: u64) -> ResourceLimits {
        self.max_plans = Some(plans);
        self
    }

    pub fn with_max_memo_entries(mut self, entries: u64) -> ResourceLimits {
        self.max_memo_entries = Some(entries);
        self
    }
}

/// Why the optimizer fell back to the traditional two-phase plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationReason {
    /// The search budget (`max_plans` / `max_memo_entries`) ran out
    /// mid-enumeration.
    SearchBudgetExhausted,
    /// The wall-clock deadline expired during optimization.
    OptimizerTimeout,
}

impl fmt::Display for DegradationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationReason::SearchBudgetExhausted => {
                write!(f, "optimizer search budget exhausted")
            }
            DegradationReason::OptimizerTimeout => {
                write!(f, "wall-clock deadline expired during optimization")
            }
        }
    }
}

/// How an optimization run concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizeOutcome {
    /// The configured search completed within budget.
    #[default]
    Full,
    /// The search budget ran out; the returned plan is the traditional
    /// two-phase plan (the paper's never-worse baseline).
    Degraded(DegradationReason),
}

impl OptimizeOutcome {
    pub fn is_degraded(&self) -> bool {
        matches!(self, OptimizeOutcome::Degraded(_))
    }

    pub fn degradation_reason(&self) -> Option<DegradationReason> {
        match self {
            OptimizeOutcome::Full => None,
            OptimizeOutcome::Degraded(r) => Some(*r),
        }
    }
}

impl fmt::Display for OptimizeOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeOutcome::Full => write!(f, "full search"),
            OptimizeOutcome::Degraded(r) => {
                write!(f, "degraded to traditional plan: {r}")
            }
        }
    }
}

/// Shared accounting for one governed query (optimize + execute).
///
/// The governor is cheap to consult: budget charges are relaxed atomic
/// adds, and deadline checks read a precomputed `Instant`. All charge
/// methods return structured errors — never panic — so governed loops
/// can `?` out cleanly at the next operator boundary.
#[derive(Debug)]
pub struct ResourceGovernor {
    token: CancellationToken,
    deadline: Option<Instant>,
    limits: ResourceLimits,
    rows: AtomicU64,
    bytes: AtomicU64,
    plans: AtomicU64,
    memo: AtomicU64,
}

impl Default for ResourceGovernor {
    fn default() -> ResourceGovernor {
        ResourceGovernor::unlimited()
    }
}

impl ResourceGovernor {
    pub fn new(limits: ResourceLimits) -> ResourceGovernor {
        ResourceGovernor::with_token(CancellationToken::new(), limits)
    }

    pub fn with_token(token: CancellationToken, limits: ResourceLimits) -> ResourceGovernor {
        ResourceGovernor {
            token,
            deadline: limits.timeout.map(|t| Instant::now() + t),
            limits,
            rows: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            plans: AtomicU64::new(0),
            memo: AtomicU64::new(0),
        }
    }

    /// A governor with no limits — the identity element used by
    /// ungoverned entry points.
    pub fn unlimited() -> ResourceGovernor {
        ResourceGovernor::new(ResourceLimits::unlimited())
    }

    /// The cancellation token governed work polls.
    pub fn token(&self) -> &CancellationToken {
        &self.token
    }

    /// The limits this governor enforces.
    pub fn limits(&self) -> &ResourceLimits {
        &self.limits
    }

    /// Check cancellation and the wall-clock deadline; call at every
    /// operator / enumeration boundary.
    pub fn check_interrupt(&self) -> Result<()> {
        self.token.check()?;
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(AggViewError::ResourceExhausted(format!(
                    "wall-clock deadline exceeded ({:?} budget)",
                    self.limits.timeout.unwrap_or_default()
                )));
            }
        }
        Ok(())
    }

    /// True once the wall-clock deadline has passed.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() > d)
    }

    fn charge(
        counter: &AtomicU64,
        limit: Option<u64>,
        n: u64,
        what: &str,
    ) -> std::result::Result<(), String> {
        let total = counter.fetch_add(n, Ordering::Relaxed) + n;
        match limit {
            Some(cap) if total > cap => Err(format!("{what} budget exhausted ({total} > {cap})")),
            _ => Ok(()),
        }
    }

    /// Charge `n` materialized rows against the row budget.
    pub fn charge_rows(&self, n: u64) -> Result<()> {
        Self::charge(&self.rows, self.limits.max_rows, n, "row")
            .map_err(AggViewError::ResourceExhausted)
    }

    /// Charge `n` materialized bytes against the byte budget.
    pub fn charge_bytes(&self, n: u64) -> Result<()> {
        Self::charge(&self.bytes, self.limits.max_bytes, n, "memory")
            .map_err(AggViewError::ResourceExhausted)
    }

    /// Charge one batch of materialized output (`rows` tuples totalling
    /// `bytes`) against both budgets in one call. Parallel workers share
    /// the governor by reference: the counters are plain atomics, so
    /// concurrent charges from any number of threads stay exact, and the
    /// first charge that crosses a cap fails — every worker observes its
    /// own overrun within one further charge, bounding overshoot at one
    /// batch per worker.
    pub fn charge_output(&self, rows: u64, bytes: u64) -> Result<()> {
        self.charge_rows(rows)?;
        self.charge_bytes(bytes)
    }

    /// Charge a whole tile of output in two atomic operations while
    /// keeping the per-row overshoot bound.
    ///
    /// The vectorized operators produce up to `batch_rows` tuples per
    /// kernel invocation; charging them row-at-a-time would reintroduce
    /// one atomic RMW per tuple. A plain bulk `fetch_add` would instead
    /// let a single tile overshoot a cap by `batch_rows - 1` — visible to
    /// the governance tests, which pin the overshoot to at most one row
    /// per worker. [`charge_clamped`](Self::charge_clamped) reconciles
    /// the two: it adds the whole tile, and on crossing a cap rolls the
    /// counter back to exactly `cap + 1` before reporting exhaustion, so
    /// observed usage is identical to the row-at-a-time path's
    /// first-overrunning-charge state.
    pub fn charge_output_bulk(&self, rows: u64, bytes: u64) -> Result<()> {
        Self::charge_clamped(&self.rows, self.limits.max_rows, rows, "row")
            .map_err(AggViewError::ResourceExhausted)?;
        Self::charge_clamped(&self.bytes, self.limits.max_bytes, bytes, "memory")
            .map_err(AggViewError::ResourceExhausted)
    }

    fn charge_clamped(
        counter: &AtomicU64,
        limit: Option<u64>,
        n: u64,
        what: &str,
    ) -> std::result::Result<(), String> {
        let total = counter.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(cap) = limit {
            if total > cap {
                // Roll back to cap + 1 (never below what this call added)
                // so usage reads as if the first over-cap row had been
                // charged individually.
                let roll_back = (total - cap - 1).min(n);
                counter.fetch_sub(roll_back, Ordering::Relaxed);
                return Err(format!(
                    "{what} budget exhausted ({} > {cap})",
                    total - roll_back
                ));
            }
        }
        Ok(())
    }

    /// Charge `n` costed plans against the optimizer search budget.
    pub fn charge_plans(&self, n: u64) -> Result<()> {
        Self::charge(&self.plans, self.limits.max_plans, n, "optimizer plan")
            .map_err(AggViewError::ResourceExhausted)
    }

    /// Charge `n` memo entries against the optimizer search budget.
    pub fn charge_memo(&self, n: u64) -> Result<()> {
        Self::charge(
            &self.memo,
            self.limits.max_memo_entries,
            n,
            "optimizer memo",
        )
        .map_err(AggViewError::ResourceExhausted)
    }

    /// Rows charged so far.
    pub fn rows_used(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Bytes charged so far.
    pub fn bytes_used(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Plans charged so far.
    pub fn plans_used(&self) -> u64 {
        self.plans.load(Ordering::Relaxed)
    }

    /// True once the search budget (plans or memo entries) is spent.
    pub fn search_budget_exhausted(&self) -> bool {
        let plans_out = self
            .limits
            .max_plans
            .is_some_and(|cap| self.plans.load(Ordering::Relaxed) > cap);
        let memo_out = self
            .limits
            .max_memo_entries
            .is_some_and(|cap| self.memo.load(Ordering::Relaxed) > cap);
        plans_out || memo_out
    }

    /// Governor for the degraded (traditional-plan) retry: same
    /// cancellation token, but no search limits or deadline — the
    /// baseline plan is the safety net and must always be producible.
    pub fn for_fallback(&self) -> ResourceGovernor {
        ResourceGovernor::with_token(self.token.clone(), ResourceLimits::unlimited())
    }

    /// Classify why optimization was interrupted, for degradation
    /// reporting. Returns `None` when neither budget nor deadline is
    /// responsible (e.g. explicit cancellation).
    pub fn degradation_reason(&self) -> Option<DegradationReason> {
        if self.search_budget_exhausted() {
            Some(DegradationReason::SearchBudgetExhausted)
        } else if self.deadline_exceeded() {
            Some(DegradationReason::OptimizerTimeout)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_cancels_all_clones() {
        let t = CancellationToken::new();
        let t2 = t.clone();
        assert!(t.check().is_ok());
        t2.cancel();
        assert!(t.is_cancelled());
        let err = t.check().unwrap_err();
        assert_eq!(err.kind(), "cancelled");
    }

    #[test]
    fn bulk_charge_clamps_overshoot_to_one_row() {
        let g = ResourceGovernor::new(ResourceLimits {
            max_rows: Some(10),
            ..ResourceLimits::unlimited()
        });
        assert!(g.charge_output_bulk(8, 100).is_ok());
        // A 1024-row tile crossing the cap trips the budget but leaves
        // the counter at exactly cap + 1, matching row-at-a-time charging.
        let err = g.charge_output_bulk(1024, 100).unwrap_err();
        assert_eq!(err.kind(), "resource-exhausted");
        assert!(err.to_string().contains("row budget exhausted (11 > 10)"));
        assert_eq!(g.rows_used(), 11);
        // A bulk charge that lands exactly on the cap is fine.
        let g2 = ResourceGovernor::new(ResourceLimits {
            max_rows: Some(10),
            ..ResourceLimits::unlimited()
        });
        assert!(g2.charge_output_bulk(10, 0).is_ok());
        assert_eq!(g2.rows_used(), 10);
    }

    #[test]
    fn unlimited_governor_never_trips() {
        let g = ResourceGovernor::unlimited();
        assert!(g.check_interrupt().is_ok());
        assert!(g.charge_rows(u64::MAX / 2).is_ok());
        assert!(g.charge_plans(u64::MAX / 2).is_ok());
        assert!(!g.search_budget_exhausted());
        assert_eq!(g.degradation_reason(), None);
    }

    #[test]
    fn row_budget_trips_with_structured_error() {
        let g = ResourceGovernor::new(ResourceLimits::unlimited().with_max_rows(10));
        assert!(g.charge_rows(10).is_ok());
        let err = g.charge_rows(1).unwrap_err();
        assert_eq!(err.kind(), "resource-exhausted");
        assert!(err.message().contains("row budget"));
        assert!(!err.is_retryable());
    }

    #[test]
    fn plan_budget_trips_and_classifies() {
        let g = ResourceGovernor::new(ResourceLimits::unlimited().with_max_plans(5));
        assert!(g.charge_plans(5).is_ok());
        assert!(g.charge_plans(1).is_err());
        assert!(g.search_budget_exhausted());
        assert_eq!(
            g.degradation_reason(),
            Some(DegradationReason::SearchBudgetExhausted)
        );
    }

    #[test]
    fn deadline_trips_after_expiry() {
        let g = ResourceGovernor::new(
            ResourceLimits::unlimited().with_timeout(Duration::from_millis(0)),
        );
        std::thread::sleep(Duration::from_millis(2));
        assert!(g.deadline_exceeded());
        let err = g.check_interrupt().unwrap_err();
        assert_eq!(err.kind(), "resource-exhausted");
        assert_eq!(
            g.degradation_reason(),
            Some(DegradationReason::OptimizerTimeout)
        );
    }

    #[test]
    fn fallback_keeps_token_drops_budgets() {
        let g = ResourceGovernor::new(ResourceLimits::unlimited().with_max_plans(1));
        let _ = g.charge_plans(2);
        let fb = g.for_fallback();
        assert!(fb.charge_plans(1_000_000).is_ok());
        g.token().cancel();
        assert!(fb.check_interrupt().is_err(), "token is shared");
    }

    #[test]
    fn outcome_display_names_reason() {
        let o = OptimizeOutcome::Degraded(DegradationReason::SearchBudgetExhausted);
        assert!(o.is_degraded());
        assert!(o.to_string().contains("search budget"));
        assert!(!OptimizeOutcome::Full.is_degraded());
    }
}
