//! Typed bottom-up schema inference over plan trees.
//!
//! Strictly stronger than [`Plan::validate`]: besides column
//! availability (every consumed column produced below, scan filters
//! local, HAVING restricted to group keys and own aggregates), this
//! pass infers a [`DataType`] for every column an operator emits and
//! checks aggregate input types, partial-state component types, and
//! predicate comparability.

use super::Violation;
use crate::plan::Plan;
use aggview_common::{AggFunc, Col, DataType, Expr, Predicate};
use aggview_storage::Catalog;
use std::collections::BTreeMap;

pub(crate) const RULE: &str = "schema";

/// A map from every column a node outputs to its inferred type.
type TypeMap = BTreeMap<Col, DataType>;

/// Run the pass, appending one violation per defect found.
pub(crate) fn check(
    plan: &Plan,
    catalog: &Catalog,
    rel_tables: Option<&[String]>,
    out: &mut Vec<Violation>,
) {
    let _ = typed_cols(plan, catalog, rel_tables, out);
}

fn push(out: &mut Vec<Violation>, message: String) {
    out.push(Violation::new(RULE, message));
}

/// Infer the node's output types; `None` when a child failed so badly
/// that nothing upward can be typed (its defects are already recorded).
fn typed_cols(
    plan: &Plan,
    catalog: &Catalog,
    rel_tables: Option<&[String]>,
    out: &mut Vec<Violation>,
) -> Option<TypeMap> {
    match plan {
        Plan::EmptyScan { project, types, .. } => {
            // The pruned subtree's layout was recorded at rewrite time;
            // the dataflow pass cross-checks it against the catalog.
            let mut map = TypeMap::new();
            for (c, ty) in project.iter().zip(types) {
                map.insert(*c, *ty);
            }
            if types.len() != project.len() {
                push(
                    out,
                    format!(
                        "empty scan records {} types for {} projected columns",
                        types.len(),
                        project.len()
                    ),
                );
                return None;
            }
            Some(map)
        }
        Plan::Scan {
            rel,
            table,
            filters,
            project,
        } => {
            let t = match catalog.get(table) {
                Ok(t) => t,
                Err(e) => {
                    push(out, format!("scan of {rel}: {}", e.message()));
                    return None;
                }
            };
            if let Some(tables) = rel_tables {
                match tables.get(rel.idx()) {
                    Some(declared) if declared.eq_ignore_ascii_case(table) => {}
                    Some(declared) => push(
                        out,
                        format!(
                            "scan of {rel} names table `{table}` but the query binds {rel} \
                             to `{declared}`"
                        ),
                    ),
                    None => push(
                        out,
                        format!("scan of undeclared relation {rel} (table `{table}`)"),
                    ),
                }
            }
            let mut avail = TypeMap::new();
            for (i, f) in t.schema().fields().iter().enumerate() {
                avail.insert(Col::base(*rel, i), f.ty);
            }
            for p in filters {
                check_predicate(p, &avail, &format!("scan filter on {rel}"), out);
            }
            project_types(project, &avail, &format!("scan of {rel}"), out)
        }
        Plan::ExtentScan {
            view,
            table,
            cols,
            outputs,
            filters,
            project,
            ..
        } => {
            let who = format!("extent scan of `{view}`");
            let t = match catalog.get(table) {
                Ok(t) => t,
                Err(e) => {
                    push(out, format!("{who}: {}", e.message()));
                    return None;
                }
            };
            if cols.len() != outputs.len() {
                push(
                    out,
                    format!(
                        "{who} maps {} physical columns to {} outputs",
                        cols.len(),
                        outputs.len()
                    ),
                );
                return None;
            }
            let mut avail = TypeMap::new();
            for (&c, &o) in cols.iter().zip(outputs) {
                match t.schema().fields().get(c) {
                    Some(f) => {
                        avail.insert(o, f.ty);
                    }
                    None => push(
                        out,
                        format!(
                            "{who} reads column {c} of the {}-column extent `{table}`",
                            t.schema().len()
                        ),
                    ),
                }
            }
            for p in filters {
                check_predicate(p, &avail, &format!("extent-scan filter on `{view}`"), out);
            }
            project_types(project, &avail, &who, out)
        }
        Plan::Join {
            left,
            right,
            preds,
            project,
            ..
        } => {
            let l = typed_cols(left, catalog, rel_tables, out);
            let r = typed_cols(right, catalog, rel_tables, out);
            if left.rel_set() & right.rel_set() != 0 {
                push(out, "join children overlap in base relations".into());
            }
            let (mut avail, r) = match (l, r) {
                (Some(l), Some(r)) => (l, r),
                _ => return None,
            };
            avail.extend(r);
            for p in preds {
                check_predicate(p, &avail, "join predicate", out);
            }
            project_types(project, &avail, "join", out)
        }
        Plan::GroupBy {
            input,
            spec,
            project,
            ..
        } => {
            let child = typed_cols(input, catalog, rel_tables, out)?;
            let who = format!("group-by {}", spec.owner);
            let mut avail = TypeMap::new();
            for g in &spec.group_cols {
                match child.get(g) {
                    Some(&ty) => {
                        avail.insert(*g, ty);
                    }
                    None => push(
                        out,
                        format!("{who} groups on {g}, which its input does not produce"),
                    ),
                }
            }
            for (i, a) in spec.aggs.iter().enumerate() {
                let aref = spec.agg_ref(i);
                let out_ty = if child.contains_key(&Col::part(aref, 0)) {
                    // Coalescing: the input carries partial states for
                    // this aggregate; every component must be present,
                    // and the output type comes from the decomposition.
                    let arity = a.func.partial_arity();
                    let missing: Vec<usize> = (0..arity)
                        .filter(|&k| !child.contains_key(&Col::part(aref, k)))
                        .collect();
                    if !missing.is_empty() {
                        for k in missing {
                            push(
                                out,
                                format!(
                                    "{who} coalesces {aref} but its input misses partial \
                                     component {k}"
                                ),
                            );
                        }
                        None
                    } else {
                        match a.func {
                            AggFunc::Count => Some(DataType::Int),
                            AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                                child.get(&Col::part(aref, 0)).copied()
                            }
                            AggFunc::Avg | AggFunc::StdDev => Some(DataType::Float),
                        }
                    }
                } else {
                    let arg_ty = match &a.arg {
                        Some(e) => {
                            match expr_type(
                                e,
                                &child,
                                &format!("aggregate `{a}` of {}", spec.owner),
                                out,
                            ) {
                                Some(t) => Some(t),
                                None => continue,
                            }
                        }
                        None => None,
                    };
                    match a.func.output_type(arg_ty) {
                        Ok(t) => Some(t),
                        Err(e) => {
                            push(
                                out,
                                format!("aggregate `{a}` of {}: {}", spec.owner, e.message()),
                            );
                            None
                        }
                    }
                };
                if let Some(t) = out_ty {
                    avail.insert(Col::agg(spec.owner, i), t);
                }
            }
            for h in &spec.having {
                check_predicate(h, &avail, &format!("HAVING of {}", spec.owner), out);
            }
            project_types(project, &avail, &who, out)
        }
        Plan::PartialGroupBy {
            input,
            spec,
            project,
            ..
        } => {
            let child = typed_cols(input, catalog, rel_tables, out)?;
            let mut avail = TypeMap::new();
            for g in &spec.group_cols {
                match child.get(g) {
                    Some(&ty) => {
                        avail.insert(*g, ty);
                    }
                    None => push(
                        out,
                        format!("partial group-by groups on {g}, which its input does not produce"),
                    ),
                }
            }
            for (aref, a) in &spec.aggs {
                if !a.func.is_decomposable() {
                    push(
                        out,
                        format!("partial group-by decomposes non-decomposable aggregate `{a}`"),
                    );
                    continue;
                }
                let arg_ty = match &a.arg {
                    Some(e) => {
                        match expr_type(e, &child, &format!("partial aggregate `{a}`"), out) {
                            Some(t) => Some(t),
                            None => continue,
                        }
                    }
                    None => None,
                };
                match a.func.partial_types(arg_ty) {
                    Ok(tys) => {
                        for (k, t) in tys.into_iter().enumerate() {
                            avail.insert(Col::part(*aref, k), t);
                        }
                    }
                    Err(e) => push(out, format!("partial aggregate `{a}`: {}", e.message())),
                }
            }
            project_types(project, &avail, "partial group-by", out)
        }
        Plan::PartialAggregate {
            input,
            spec,
            project,
            ..
        } => {
            let child = typed_cols(input, catalog, rel_tables, out)?;
            let mut avail = TypeMap::new();
            for g in &spec.group_cols {
                match child.get(g) {
                    Some(&ty) => {
                        avail.insert(*g, ty);
                    }
                    None => push(
                        out,
                        format!(
                            "eager partial aggregate groups on {g}, which its input does \
                             not produce"
                        ),
                    ),
                }
            }
            for (aref, a) in &spec.aggs {
                if !a.func.is_decomposable() {
                    push(
                        out,
                        format!(
                            "eager partial aggregate decomposes non-decomposable \
                             aggregate `{a}`"
                        ),
                    );
                    continue;
                }
                let arg_ty = match &a.arg {
                    Some(e) => {
                        match expr_type(e, &child, &format!("eager partial aggregate `{a}`"), out) {
                            Some(t) => Some(t),
                            None => continue,
                        }
                    }
                    None => None,
                };
                match a.func.partial_types(arg_ty) {
                    Ok(tys) => {
                        for (k, t) in tys.into_iter().enumerate() {
                            avail.insert(Col::part(*aref, k), t);
                        }
                    }
                    Err(e) => push(out, format!("eager partial aggregate `{a}`: {}", e.message())),
                }
            }
            // The duplicate-factor column is a per-group COUNT(*): Int.
            if let Some(c) = spec.count_col() {
                avail.insert(c, DataType::Int);
            }
            project_types(project, &avail, "eager partial aggregate", out)
        }
    }
}

/// Resolve the projection against the available typed columns.
fn project_types(
    project: &[Col],
    avail: &TypeMap,
    who: &str,
    out: &mut Vec<Violation>,
) -> Option<TypeMap> {
    let mut map = TypeMap::new();
    for c in project {
        match avail.get(c) {
            Some(&ty) => {
                map.insert(*c, ty);
            }
            None => push(
                out,
                format!("{who} projects {c}, which it does not produce"),
            ),
        }
    }
    Some(map)
}

/// Type an expression against the available columns; `None` (with a
/// recorded violation) when a column is missing or the arithmetic is
/// ill-typed.
fn expr_type(e: &Expr, avail: &TypeMap, ctx: &str, out: &mut Vec<Violation>) -> Option<DataType> {
    for c in e.cols_used() {
        if !avail.contains_key(&c) {
            push(out, format!("{ctx} reads {c}, which is not available here"));
            return None;
        }
    }
    match e.data_type(&|c| avail[&c]) {
        Ok(t) => Some(t),
        Err(err) => {
            push(out, format!("{ctx}: {}", err.message()));
            None
        }
    }
}

/// Type both sides of a predicate and require them comparable: same
/// type, or both numeric.
fn check_predicate(p: &Predicate, avail: &TypeMap, ctx: &str, out: &mut Vec<Violation>) {
    let label = format!("{ctx} `{p}`");
    let lt = expr_type(&p.left, avail, &label, out);
    let rt = expr_type(&p.right, avail, &label, out);
    if let (Some(l), Some(r)) = (lt, rt) {
        let comparable = l == r || (l.is_numeric() && r.is_numeric());
        if !comparable {
            push(out, format!("{label} compares {l} with {r}"));
        }
    }
}
