//! Cost-annotation sanity: the estimator's properties for every
//! subtree must be finite, non-negative, and monotone.
//!
//! The plan IR carries no cost fields; the annotations under test are
//! the [`PlanProps`] the [`CardEstimator`] derives for each node. This
//! pass re-derives them bottom-up and checks the invariants any sane
//! IO cost model satisfies: cost and cardinality are finite and
//! non-negative, a node never costs less than its inputs, a group-by
//! never emits more rows than it consumes (modulo the estimator's
//! floor of one group), a join never exceeds the cross product, and a
//! scan never exceeds the table.

use super::Violation;
use crate::cost::{CardEstimator, CostModel, PlanProps};
use crate::plan::Plan;
use crate::query::QueryEnv;
use aggview_storage::Catalog;

pub(crate) const RULE: &str = "cost-sanity";

/// Absolute slack for floating-point comparisons.
const EPS: f64 = 1e-6;

/// Run the pass, appending one violation per defect found.
pub(crate) fn check(
    plan: &Plan,
    model: CostModel,
    catalog: &Catalog,
    env: &QueryEnv,
    out: &mut Vec<Violation>,
) {
    let est = CardEstimator::new(model, catalog, env);
    let _ = props_checked(plan, &est, catalog, out);
}

fn push(out: &mut Vec<Violation>, message: String) {
    out.push(Violation::new(RULE, message));
}

/// Cost the node (children first) and check its annotations against
/// its inputs'. `None` when the estimator cannot price the subtree.
fn props_checked(
    plan: &Plan,
    est: &CardEstimator<'_>,
    catalog: &Catalog,
    out: &mut Vec<Violation>,
) -> Option<PlanProps> {
    let children: Vec<PlanProps> = match plan {
        Plan::Scan { .. } | Plan::ExtentScan { .. } | Plan::EmptyScan { .. } => Vec::new(),
        Plan::Join { left, right, .. } => {
            let l = props_checked(left, est, catalog, out);
            let r = props_checked(right, est, catalog, out);
            match (l, r) {
                (Some(l), Some(r)) => vec![l, r],
                _ => return None,
            }
        }
        Plan::GroupBy { input, .. }
        | Plan::PartialGroupBy { input, .. }
        | Plan::PartialAggregate { input, .. } => {
            vec![props_checked(input, est, catalog, out)?]
        }
    };
    let props = match est.cost_plan(plan) {
        Ok(p) => p,
        Err(e) => {
            push(
                out,
                format!("cost model cannot price this subtree: {}", e.message()),
            );
            return None;
        }
    };
    for (what, v) in [
        ("cost", props.cost),
        ("cardinality", props.card),
        ("width", props.width),
        ("peak bytes", props.peak_bytes),
    ] {
        if !v.is_finite() || v < 0.0 {
            push(
                out,
                format!("estimated {what} is {v}; must be finite and non-negative"),
            );
        }
    }
    for c in &children {
        if props.cost < c.cost - EPS {
            push(
                out,
                format!(
                    "estimated cost {:.3} is below an input's cumulative cost {:.3}; \
                     cost must be monotone up the tree",
                    props.cost, c.cost
                ),
            );
        }
    }
    match plan {
        Plan::Scan { rel, table, .. } => {
            if let Ok(t) = catalog.get(table) {
                let rows = t.len() as f64;
                if props.card > rows + EPS {
                    push(
                        out,
                        format!(
                            "scan of {rel} estimates {:.1} rows but `{table}` holds {rows}",
                            props.card
                        ),
                    );
                }
            }
        }
        Plan::ExtentScan { view, table, .. } => {
            if let Ok(t) = catalog.get(table) {
                let rows = t.len() as f64;
                if props.card > rows + EPS {
                    push(
                        out,
                        format!(
                            "extent scan of `{view}` estimates {:.1} rows but `{table}` \
                             holds {rows}",
                            props.card
                        ),
                    );
                }
            }
        }
        Plan::EmptyScan { .. } => {
            if props.card > EPS {
                push(
                    out,
                    format!(
                        "empty scan estimates {:.1} rows but provably produces none",
                        props.card
                    ),
                );
            }
        }
        Plan::Join { .. } => {
            let cross = children[0].card * children[1].card;
            if props.card > cross * (1.0 + EPS) + EPS {
                push(
                    out,
                    format!(
                        "join estimates {:.1} rows, above the cross product {:.1}",
                        props.card, cross
                    ),
                );
            }
        }
        Plan::GroupBy { .. } | Plan::PartialGroupBy { .. } | Plan::PartialAggregate { .. } => {
            // The estimator floors group counts at one, so a grouping of
            // a sub-row estimate may legitimately report one group.
            let bound = children[0].card.max(1.0);
            if props.card > bound + EPS {
                push(
                    out,
                    format!(
                        "group-by estimates {:.1} groups from only {:.1} input rows",
                        props.card, children[0].card
                    ),
                );
            }
        }
    }
    Some(props)
}
