//! Transformation-legality rules: the paper's structural invariants.
//!
//! * **Pull-up key rule** (Definition 1, Figure 1): a view-owned
//!   group-by deferred past relations outside its block must
//!   distinguish those relations' tuples — every primary-key column of
//!   each pulled relation is a grouping column or is equated (through
//!   the join's equality predicates) to one. Requires the canonical
//!   query, which records each view's original relations.
//! * **Invariant grouping** (Section 4.1): once the top group-by's
//!   finalized groups cross a join, that join must match at most one
//!   tuple per group — a key join into the other side.
//! * **Coalescing merge stage** (Section 4.2, Figure 2): every partial
//!   group-by's aggregates must be decomposable and re-assembled by the
//!   nearest full group-by above under the same identity, function and
//!   argument.
//! * **Degraded shape**: a governor-degraded plan must be the
//!   traditional two-phase form — no partial aggregation, every view
//!   aggregated over exactly its own relations, the top group-by at the
//!   root.

use super::Violation;
use crate::plan::{GroupBySpec, PartialAggSpec, Plan};
use crate::query::CanonicalQuery;
use crate::transform::props::{is_fk_join_into, output_key};
use aggview_common::{Col, Predicate, RelId, ViewId};
use aggview_storage::{stores_partial_state, Catalog};
use std::collections::BTreeSet;

pub(crate) const RULE_PULLUP: &str = "pull-up-key";
pub(crate) const RULE_INVARIANT: &str = "invariant-grouping";
pub(crate) const RULE_COALESCE: &str = "coalescing-merge";
pub(crate) const RULE_DEGRADED: &str = "degraded-shape";
pub(crate) const RULE_MATVIEW: &str = "matview-extent";
pub(crate) const RULE_PARTIAL_AGG: &str = "partial-aggregate";

// ---------------------------------------------------------------------
// Pull-up key rule (Definition 1).
// ---------------------------------------------------------------------

/// Check every view-owned group-by that aggregates over relations
/// outside its view's declared block: the pulled relations' keys must
/// be covered by the grouping columns (directly or through equated
/// join columns), or grouping would merge tuples Definition 1 keeps
/// apart.
pub(crate) fn check_pullup_keys(
    plan: &Plan,
    catalog: &Catalog,
    query: &CanonicalQuery,
    out: &mut Vec<Violation>,
) {
    walk(plan, &mut |node| {
        let Plan::GroupBy { input, spec, .. } = node else {
            return;
        };
        let ViewId::View(i) = spec.owner else {
            return; // the top group-by is governed by invariant grouping
        };
        let Some(view) = query.views.get(i as usize) else {
            return; // unknown owner: the schema pass flags dangling refs
        };
        let pulled = input.rel_set() & !view.rel_set();
        if pulled == 0 {
            return;
        }
        let classes = EquivClasses::collect(input);
        let grouped: BTreeSet<Col> = spec.group_cols.iter().copied().collect();
        for rel in rel_ids(pulled) {
            let Ok(table) = query.env.table_of(rel) else {
                out.push(Violation::new(
                    RULE_PULLUP,
                    format!(
                        "group-by {} is deferred past undeclared relation {rel}",
                        spec.owner
                    ),
                ));
                continue;
            };
            let Ok(t) = catalog.get(table) else {
                continue; // unknown table: the schema pass reports it
            };
            let Some(pk) = t.primary_key() else {
                out.push(Violation::new(
                    RULE_PULLUP,
                    format!(
                        "group-by {} is deferred past relation {rel} (`{table}`), which has \
                         no primary key to add to the grouping columns (Definition 1)",
                        spec.owner
                    ),
                ));
                continue;
            };
            for &c in &pk.cols {
                let kc = Col::base(rel, c);
                let covered = grouped.contains(&kc) || grouped.iter().any(|&g| classes.same(kc, g));
                if !covered {
                    out.push(Violation::new(
                        RULE_PULLUP,
                        format!(
                            "group-by {} is deferred past {rel} (`{table}`) but key column \
                             {kc} is neither a grouping column nor equated to one \
                             (Definition 1)",
                            spec.owner
                        ),
                    ));
                }
            }
        }
    });
}

// ---------------------------------------------------------------------
// Invariant grouping (Section 4.1).
// ---------------------------------------------------------------------

/// Check every join whose input carries the finalized output of the top
/// group-by: the other side must be key-joined, so each group row
/// matches at most one tuple and the early grouping is invariant.
pub(crate) fn check_invariant_grouping(plan: &Plan, catalog: &Catalog, out: &mut Vec<Violation>) {
    walk(plan, &mut |node| {
        let Plan::Join {
            left, right, preds, ..
        } = node
        else {
            return;
        };
        for (grouped_side, other) in [(left, right), (right, left)] {
            if !exposes_top_group(grouped_side) {
                continue;
            }
            let other_cols: BTreeSet<Col> = other.output_cols().iter().copied().collect();
            let keyed = match output_key(other, catalog) {
                Ok(Some(key)) => is_fk_join_into(preds, &key, &other_cols),
                _ => false,
            };
            if !keyed {
                out.push(Violation::new(
                    RULE_INVARIANT,
                    format!(
                        "join above the early top group-by is not a key join into the \
                         other side (relations {:?}); grouping before it is not \
                         invariant (Section 4.1)",
                        other.rels()
                    ),
                ));
            }
        }
    });
}

/// True when the subtree's output rows are finalized groups of the top
/// group-by (`G0`) — i.e. the grouping already happened below this
/// point and has not been re-aggregated since.
fn exposes_top_group(plan: &Plan) -> bool {
    match plan {
        // An extent scan exposes finalized *view* aggregates; the top
        // group-by (when matched at all) sits above it as compensation.
        Plan::Scan { .. } | Plan::ExtentScan { .. } | Plan::EmptyScan { .. } => false,
        Plan::Join { left, right, .. } => exposes_top_group(left) || exposes_top_group(right),
        Plan::GroupBy { spec, .. } => spec.owner == ViewId::Top,
        Plan::PartialGroupBy { input, .. } | Plan::PartialAggregate { input, .. } => {
            exposes_top_group(input)
        }
    }
}

// ---------------------------------------------------------------------
// Coalescing merge stage (Section 4.2, Figure 2).
// ---------------------------------------------------------------------

/// Check that each partial group-by's states are coalesced by the
/// nearest full group-by above it, under matching aggregate identity,
/// function and argument. (Decomposability and component availability
/// are enforced by the schema pass.)
pub(crate) fn check_coalescing(plan: &Plan, out: &mut Vec<Violation>) {
    coalescing_walk(plan, None, out);
}

fn coalescing_walk<'p>(plan: &'p Plan, nearest: Option<&'p GroupBySpec>, out: &mut Vec<Violation>) {
    match plan {
        Plan::Scan { .. } | Plan::EmptyScan { .. } => {}
        Plan::ExtentScan { outputs, .. } => {
            // Stored partial states must be coalesced by a group-by above,
            // exactly like the output of a partial group-by.
            if nearest.is_none() && outputs.iter().any(|c| matches!(c, Col::Part(_))) {
                out.push(Violation::new(
                    RULE_COALESCE,
                    "extent scan exposes stored partial aggregate states but no group-by \
                     above coalesces them (Figure 2)"
                        .into(),
                ));
            }
        }
        Plan::Join { left, right, .. } => {
            coalescing_walk(left, nearest, out);
            coalescing_walk(right, nearest, out);
        }
        Plan::GroupBy { input, spec, .. } => coalescing_walk(input, Some(spec), out),
        Plan::PartialGroupBy { input, spec, .. } => {
            match nearest {
                None => out.push(Violation::new(
                    RULE_COALESCE,
                    "partial group-by produces partial aggregate states but no group-by \
                     above coalesces them (Figure 2)"
                        .into(),
                )),
                Some(g) => {
                    for (aref, a) in &spec.aggs {
                        if aref.owner != g.owner {
                            out.push(Violation::new(
                                RULE_COALESCE,
                                format!(
                                    "partial group-by decomposes {aref} but the nearest \
                                     group-by above is {} (Figure 2 merge-stage mismatch)",
                                    g.owner
                                ),
                            ));
                            continue;
                        }
                        match g.aggs.get(aref.idx as usize) {
                            None => out.push(Violation::new(
                                RULE_COALESCE,
                                format!(
                                    "partial group-by decomposes {aref} but {} declares \
                                     only {} aggregate(s)",
                                    g.owner,
                                    g.aggs.len()
                                ),
                            )),
                            Some(up) if up.func != a.func => out.push(Violation::new(
                                RULE_COALESCE,
                                format!(
                                    "coalescing mismatch for {aref}: the partial stage \
                                     computes `{a}` but the merge stage expects `{up}`",
                                ),
                            )),
                            Some(up) if up.arg != a.arg => out.push(Violation::new(
                                RULE_COALESCE,
                                format!(
                                    "coalescing mismatch for {aref}: the partial stage \
                                     aggregates `{a}` but the merge stage declares `{up}`",
                                ),
                            )),
                            Some(_) => {}
                        }
                    }
                }
            }
            coalescing_walk(input, nearest, out);
        }
        // The eager partial aggregate's merge relationship is governed by
        // the dedicated partial-aggregate rule; only recurse here.
        Plan::PartialAggregate { input, .. } => coalescing_walk(input, nearest, out),
    }
}

// ---------------------------------------------------------------------
// Eager partial aggregation (pull-up/push-down duality).
// ---------------------------------------------------------------------

/// Check every eager partial aggregate against the push-down legality
/// conditions dual to the paper's pull-up rule:
///
/// * **merge stage** — each pushed aggregate must be re-assembled by the
///   nearest full group-by above under the same identity, function and
///   argument (Figure 2);
/// * **pushed keys** (Definition 1, dualized) — the pushed grouping
///   columns must cover every final grouping column this subtree
///   produces *and* every subtree column referenced by a predicate
///   evaluated between this node and the merge, or early grouping would
///   merge rows the joins and filters above still need to tell apart;
/// * **duplicate factor** — when the merge re-aggregates partner-side
///   duplicate-sensitive aggregates, the node must carry the per-group
///   count column that scales them for join replication.
pub(crate) fn check_partial_aggregate(plan: &Plan, out: &mut Vec<Violation>) {
    pa_walk(plan, None, &mut Vec::new(), out);
}

fn pa_walk<'p>(
    plan: &'p Plan,
    nearest: Option<&'p GroupBySpec>,
    preds_above: &mut Vec<&'p Predicate>,
    out: &mut Vec<Violation>,
) {
    match plan {
        Plan::Scan { .. } | Plan::EmptyScan { .. } | Plan::ExtentScan { .. } => {}
        Plan::Join {
            left, right, preds, ..
        } => {
            let n = preds_above.len();
            preds_above.extend(preds.iter());
            pa_walk(left, nearest, preds_above, out);
            pa_walk(right, nearest, preds_above, out);
            preds_above.truncate(n);
        }
        // A full group-by finalizes: predicates above it no longer see
        // pre-aggregation rows, so the pending set restarts.
        Plan::GroupBy { input, spec, .. } => pa_walk(input, Some(spec), &mut Vec::new(), out),
        Plan::PartialGroupBy { input, .. } => pa_walk(input, nearest, preds_above, out),
        Plan::PartialAggregate { input, spec, .. } => {
            check_eager_node(input, spec, nearest, preds_above, out);
            pa_walk(input, nearest, preds_above, out);
        }
    }
}

fn check_eager_node(
    input: &Plan,
    spec: &PartialAggSpec,
    nearest: Option<&GroupBySpec>,
    preds_above: &[&Predicate],
    out: &mut Vec<Violation>,
) {
    let Some(g) = nearest else {
        out.push(Violation::new(
            RULE_PARTIAL_AGG,
            "eager partial aggregate produces partial states but no group-by above \
             merges them (Figure 2)"
                .into(),
        ));
        return;
    };
    // Merge stage: identity, function and argument must line up.
    for (aref, a) in &spec.aggs {
        if aref.owner != g.owner {
            out.push(Violation::new(
                RULE_PARTIAL_AGG,
                format!(
                    "eager partial aggregate decomposes {aref} but the nearest group-by \
                     above is {} (Figure 2 merge-stage mismatch)",
                    g.owner
                ),
            ));
            continue;
        }
        match g.aggs.get(aref.idx as usize) {
            None => out.push(Violation::new(
                RULE_PARTIAL_AGG,
                format!(
                    "eager partial aggregate decomposes {aref} but {} declares only {} \
                     aggregate(s)",
                    g.owner,
                    g.aggs.len()
                ),
            )),
            Some(up) if up.func != a.func || up.arg != a.arg => out.push(Violation::new(
                RULE_PARTIAL_AGG,
                format!(
                    "eager merge mismatch for {aref}: the partial stage computes `{a}` \
                     but the merge stage expects `{up}`"
                ),
            )),
            Some(_) => {}
        }
    }
    // Pushed keys: the final grouping columns this subtree produces and
    // every subtree column a predicate above still inspects.
    let avail: BTreeSet<Col> = input.output_cols().iter().copied().collect();
    let pushed: BTreeSet<Col> = spec.group_cols.iter().copied().collect();
    let mut required: BTreeSet<Col> = g
        .group_cols
        .iter()
        .copied()
        .filter(|c| avail.contains(c))
        .collect();
    for p in preds_above {
        required.extend(p.cols_used().into_iter().filter(|c| avail.contains(c)));
    }
    for c in required {
        if !pushed.contains(&c) {
            out.push(Violation::new(
                RULE_PARTIAL_AGG,
                format!(
                    "eager partial aggregate drops {c} from its pushed grouping columns, \
                     but the merge above still groups or joins on it (Definition 1)"
                ),
            ));
        }
    }
    // Duplicate factor: kept duplicate-sensitive aggregates on the
    // partner side are scaled by this node's per-group count.
    let decomposed: BTreeSet<u32> = spec
        .aggs
        .iter()
        .filter(|(r, _)| r.owner == g.owner)
        .map(|(r, _)| r.idx)
        .collect();
    let kept_dup_sensitive = g
        .aggs
        .iter()
        .enumerate()
        .any(|(i, a)| !decomposed.contains(&(i as u32)) && a.func.is_duplicate_sensitive());
    if kept_dup_sensitive && spec.count.is_none() {
        out.push(Violation::new(
            RULE_PARTIAL_AGG,
            "merge above the eager partial aggregate re-aggregates duplicate-sensitive \
             partner-side aggregates, but the node carries no per-group count column to \
             scale them (duplicate-factor compensation)"
                .into(),
        ));
    }
}

// ---------------------------------------------------------------------
// Materialized-view extent scans.
// ---------------------------------------------------------------------

/// Check every extent scan against the catalog's materialized-view
/// registry: the view must be registered, the scan must read the view's
/// extent table, every physical-to-logical column mapping must agree
/// with the extent layout (base column at a key position, finalized
/// aggregate at a finalized position, partial component at the matching
/// component position of a state-storing aggregate), and the extent
/// must be fresh — a rewrite over a stale extent would silently return
/// pre-modification data.
pub(crate) fn check_matview(plan: &Plan, catalog: &Catalog, out: &mut Vec<Violation>) {
    walk(plan, &mut |node| {
        let Plan::ExtentScan {
            view,
            table,
            cols,
            outputs,
            ..
        } = node
        else {
            return;
        };
        let Some(meta) = catalog.matview(view) else {
            out.push(Violation::new(
                RULE_MATVIEW,
                format!("extent scan references unregistered materialized view `{view}`"),
            ));
            return;
        };
        if !meta.extent.eq_ignore_ascii_case(table) {
            out.push(Violation::new(
                RULE_MATVIEW,
                format!(
                    "extent scan of `{view}` reads `{table}` but the view's extent is `{}`",
                    meta.extent
                ),
            ));
        }
        if meta.is_stale(catalog) {
            out.push(Violation::new(
                RULE_MATVIEW,
                format!(
                    "extent of `{view}` is stale: base data changed since its last build \
                     or refresh"
                ),
            ));
        }
        for (&c, o) in cols.iter().zip(outputs) {
            let ok = match o {
                Col::Base(_) => c < meta.layout.key_cols,
                Col::Agg(_) => meta.layout.aggs.iter().any(|a| a.finalized == c),
                Col::Part(p) => meta.layout.aggs.iter().enumerate().any(|(j, a)| {
                    a.components.get(p.part as usize) == Some(&c)
                        && meta
                            .def
                            .aggs
                            .get(j)
                            .is_some_and(|spec| stores_partial_state(spec.func))
                }),
            };
            if !ok {
                out.push(Violation::new(
                    RULE_MATVIEW,
                    format!(
                        "extent scan of `{view}` maps physical column {c} to {o}, which \
                         does not agree with the extent layout"
                    ),
                ));
            }
        }
    });
}

// ---------------------------------------------------------------------
// Degraded (traditional two-phase) shape.
// ---------------------------------------------------------------------

/// Check that a governor-degraded plan is a well-formed traditional
/// two-phase plan: no partial aggregation, every surviving view
/// group-by computed over exactly its view's declared relations
/// (nothing pulled or pushed), and the top group-by — present exactly
/// when the query has one — at the root.
pub(crate) fn check_degraded_shape(plan: &Plan, query: &CanonicalQuery, out: &mut Vec<Violation>) {
    let mut top_count = 0usize;
    walk(plan, &mut |node| match node {
        Plan::PartialGroupBy { .. } => out.push(Violation::new(
            RULE_DEGRADED,
            "degraded plan contains a partial group-by; the traditional two-phase plan \
             performs no coalescing"
                .into(),
        )),
        Plan::PartialAggregate { .. } => out.push(Violation::new(
            RULE_DEGRADED,
            "degraded plan contains an eager partial aggregate; the traditional two-phase \
             plan performs no early aggregation"
                .into(),
        )),
        Plan::GroupBy { input, spec, .. } => match spec.owner {
            ViewId::Top => top_count += 1,
            ViewId::View(i) => {
                let Some(view) = query.views.get(i as usize) else {
                    return;
                };
                if input.rel_set() != view.rel_set() {
                    out.push(Violation::new(
                        RULE_DEGRADED,
                        format!(
                            "degraded plan aggregates {} over relations {:?} instead of \
                             its declared block {:?} (group-by was moved across a join)",
                            spec.owner,
                            input.rels(),
                            view.rels
                        ),
                    ));
                }
            }
        },
        _ => {}
    });
    let top_at_root = matches!(
        plan,
        Plan::GroupBy { spec, .. } if spec.owner == ViewId::Top
    );
    match (&query.group, top_count) {
        (Some(_), 1) if top_at_root => {}
        (Some(_), 1) => out.push(Violation::new(
            RULE_DEGRADED,
            "degraded plan computes the top group-by below a join instead of at the root".into(),
        )),
        (Some(_), n) => out.push(Violation::new(
            RULE_DEGRADED,
            format!("degraded plan computes the top group-by {n} times"),
        )),
        (None, 0) => {}
        (None, n) => out.push(Violation::new(
            RULE_DEGRADED,
            format!("degraded plan computes {n} top group-by(s) for a query without one"),
        )),
    }
}

// ---------------------------------------------------------------------
// Shared walking and equivalence machinery.
// ---------------------------------------------------------------------

/// Pre-order traversal applying `f` at every node.
fn walk<'p>(plan: &'p Plan, f: &mut impl FnMut(&'p Plan)) {
    f(plan);
    match plan {
        Plan::Scan { .. } | Plan::ExtentScan { .. } | Plan::EmptyScan { .. } => {}
        Plan::Join { left, right, .. } => {
            walk(left, f);
            walk(right, f);
        }
        Plan::GroupBy { input, .. }
        | Plan::PartialGroupBy { input, .. }
        | Plan::PartialAggregate { input, .. } => walk(input, f),
    }
}

/// Relation ids present in a bitset, ascending.
fn rel_ids(set: u64) -> Vec<RelId> {
    (0..64).filter(|i| set & (1 << i) != 0).map(RelId).collect()
}

/// Column equivalence classes induced by the simple equality predicates
/// (`a = b` over bare columns) of a subtree — join predicates and scan
/// filters alike. Transitive: `a = b` and `b = c` place all three in
/// one class.
struct EquivClasses {
    classes: Vec<BTreeSet<Col>>,
}

impl EquivClasses {
    fn collect(plan: &Plan) -> EquivClasses {
        let mut pairs = Vec::new();
        walk(plan, &mut |node| {
            let preds = match node {
                Plan::Scan { filters, .. } | Plan::ExtentScan { filters, .. } => filters.as_slice(),
                Plan::Join { preds, .. } => preds.as_slice(),
                Plan::GroupBy { .. }
                | Plan::PartialGroupBy { .. }
                | Plan::PartialAggregate { .. }
                | Plan::EmptyScan { .. } => &[],
            };
            for p in preds {
                if let Some(pair) = p.as_col_eq_col() {
                    pairs.push(pair);
                }
            }
        });
        let mut classes: Vec<BTreeSet<Col>> = Vec::new();
        for (a, b) in pairs {
            let ia = classes.iter().position(|s| s.contains(&a));
            let ib = classes.iter().position(|s| s.contains(&b));
            match (ia, ib) {
                (Some(x), Some(y)) if x == y => {}
                (Some(x), Some(y)) => {
                    let (lo, hi) = (x.min(y), x.max(y));
                    let merged = classes.remove(hi);
                    classes[lo].extend(merged);
                }
                (Some(x), None) => {
                    classes[x].insert(b);
                }
                (None, Some(y)) => {
                    classes[y].insert(a);
                }
                (None, None) => {
                    classes.push([a, b].into_iter().collect());
                }
            }
        }
        EquivClasses { classes }
    }

    fn same(&self, a: Col, b: Col) -> bool {
        a == b
            || self
                .classes
                .iter()
                .any(|s| s.contains(&a) && s.contains(&b))
    }
}
