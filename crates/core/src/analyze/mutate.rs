//! Seeded plan mutations for the analyzer's negative-test harness.
//!
//! Each mutation takes a valid plan and breaks exactly one invariant
//! the [`PlanAnalyzer`](super::PlanAnalyzer) is supposed to check:
//! dropping a grouping column out from under the projection, moving a
//! HAVING predicate below the group-by, corrupting a coalescing merge
//! stage, dereferencing columns no operator produces, and so on. Only
//! mutations applicable to the given plan's shape are emitted — a plan
//! without a join cannot demonstrate a join mutation — so the test
//! corpus spans several plan shapes to exercise every kind.

use crate::plan::Plan;
use aggview_common::{AggFunc, CmpOp, Col, DataType, Expr, Predicate, RelId, Value};

/// A deliberately corrupted plan the analyzer must reject.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// Stable mutation-kind identifier, e.g. `drop-group-col`.
    pub name: &'static str,
    /// The mutated plan.
    pub plan: Plan,
}

/// One node-level rewrite attempt: `Some(replacement)` when applicable.
type Mutation = fn(&Plan) -> Option<Plan>;

/// Every applicable single-site mutation of `plan`, one mutant per
/// mutation kind, each corrupting the first matching node.
pub fn mutants(plan: &Plan) -> Vec<Mutant> {
    let kinds: [(&'static str, Mutation); 15] = [
        ("drop-group-col", drop_group_col),
        ("move-having-below", move_having_below),
        ("swap-coalesce-func", swap_coalesce_func),
        ("drop-partial-component", drop_partial_component),
        ("drop-join-input-col", drop_join_input_col),
        ("overlap-join-children", overlap_join_children),
        ("rename-scan-table", rename_scan_table),
        ("agg-arg-unavailable", agg_arg_unavailable),
        ("group-on-unavailable", group_on_unavailable),
        ("having-foreign-column", having_foreign_column),
        ("nonlocal-scan-filter", nonlocal_scan_filter),
        ("join-pred-unavailable", join_pred_unavailable),
        ("eager-drop-pushed-key", eager_drop_pushed_key),
        ("eager-drop-count", eager_drop_count),
        ("eager-component-lie", eager_component_lie),
    ];
    kinds
        .into_iter()
        .filter_map(|(name, f)| {
            let mut f = f;
            map_first(plan, &mut f).map(|plan| Mutant { name, plan })
        })
        .collect()
}

/// Every applicable dataflow-specific mutation of `plan`: corruptions
/// only the [`dataflow`](super::dataflow) pass can see. Kept separate
/// from [`mutants`] because the contradictory-filter mutant produces a
/// *warning* (the plan still computes correct results, just wastefully)
/// rather than a rejection, and the `EmptyScan` lies need a plan shape
/// the optimizer only emits after pruning.
pub fn dataflow_mutants(plan: &Plan) -> Vec<Mutant> {
    let kinds: [(&'static str, Mutation); 3] = [
        ("contradictory-filter", contradictory_filter),
        ("empty-scan-type-lie", empty_scan_type_lie),
        ("empty-scan-phantom-cover", empty_scan_phantom_cover),
    ];
    kinds
        .into_iter()
        .filter_map(|(name, f)| {
            let mut f = f;
            map_first(plan, &mut f).map(|plan| Mutant { name, plan })
        })
        .collect()
}

/// Rebuild the tree with the first node (pre-order) for which `f`
/// returns a replacement swapped in; `None` when no node matched.
fn map_first(plan: &Plan, f: &mut impl FnMut(&Plan) -> Option<Plan>) -> Option<Plan> {
    if let Some(p) = f(plan) {
        return Some(p);
    }
    match plan {
        Plan::Scan { .. } | Plan::ExtentScan { .. } | Plan::EmptyScan { .. } => None,
        Plan::Join {
            algo,
            left,
            right,
            preds,
            project,
        } => {
            if let Some(l) = map_first(left, f) {
                return Some(Plan::Join {
                    algo: *algo,
                    left: Box::new(l),
                    right: right.clone(),
                    preds: preds.clone(),
                    project: project.clone(),
                });
            }
            map_first(right, f).map(|r| Plan::Join {
                algo: *algo,
                left: left.clone(),
                right: Box::new(r),
                preds: preds.clone(),
                project: project.clone(),
            })
        }
        Plan::GroupBy {
            algo,
            input,
            spec,
            project,
        } => map_first(input, f).map(|i| Plan::GroupBy {
            algo: *algo,
            input: Box::new(i),
            spec: spec.clone(),
            project: project.clone(),
        }),
        Plan::PartialGroupBy {
            algo,
            input,
            spec,
            project,
        } => map_first(input, f).map(|i| Plan::PartialGroupBy {
            algo: *algo,
            input: Box::new(i),
            spec: spec.clone(),
            project: project.clone(),
        }),
        Plan::PartialAggregate {
            algo,
            input,
            spec,
            project,
        } => map_first(input, f).map(|i| Plan::PartialAggregate {
            algo: *algo,
            input: Box::new(i),
            spec: spec.clone(),
            project: project.clone(),
        }),
    }
}

/// A base column no plan in the corpus produces (relations are numbered
/// from zero; 63 is the last representable id).
fn foreign_col() -> Col {
    Col::base(RelId(63), 0)
}

/// Remove a grouping column while keeping it projected: the projection
/// then references a column the group-by no longer produces.
fn drop_group_col(node: &Plan) -> Option<Plan> {
    let Plan::GroupBy {
        algo,
        input,
        spec,
        project,
    } = node
    else {
        return None;
    };
    let mut spec = spec.clone();
    let g = spec.group_cols.pop()?;
    let mut project = project.clone();
    if !project.contains(&g) {
        project.push(g);
    }
    Some(Plan::GroupBy {
        algo: *algo,
        input: input.clone(),
        spec,
        project,
    })
}

/// Move an aggregate-referencing HAVING predicate into the join below:
/// the aggregate column does not exist under the group-by.
fn move_having_below(node: &Plan) -> Option<Plan> {
    let Plan::GroupBy {
        algo,
        input,
        spec,
        project,
    } = node
    else {
        return None;
    };
    let pos = spec.having.iter().position(|h| h.uses_agg())?;
    let Plan::Join {
        algo: jalgo,
        left,
        right,
        preds,
        project: jproject,
    } = input.as_ref()
    else {
        return None;
    };
    let mut spec = spec.clone();
    let moved = spec.having.remove(pos);
    let mut preds = preds.clone();
    preds.push(moved);
    Some(Plan::GroupBy {
        algo: *algo,
        input: Box::new(Plan::Join {
            algo: *jalgo,
            left: left.clone(),
            right: right.clone(),
            preds,
            project: jproject.clone(),
        }),
        spec,
        project: project.clone(),
    })
}

/// Change the merge-stage function of a coalescing group-by so it no
/// longer mirrors the partial stage below.
fn swap_coalesce_func(node: &Plan) -> Option<Plan> {
    let Plan::GroupBy {
        algo,
        input,
        spec,
        project,
    } = node
    else {
        return None;
    };
    let below = input.output_cols();
    let i = (0..spec.aggs.len()).find(|&i| below.contains(&Col::part(spec.agg_ref(i), 0)))?;
    let mut spec = spec.clone();
    spec.aggs[i].func = match spec.aggs[i].func {
        AggFunc::Sum => AggFunc::Min,
        AggFunc::Min => AggFunc::Max,
        AggFunc::Max => AggFunc::Sum,
        AggFunc::Count => AggFunc::Sum,
        AggFunc::Avg => AggFunc::Sum,
        AggFunc::StdDev => AggFunc::Avg,
    };
    Some(Plan::GroupBy {
        algo: *algo,
        input: input.clone(),
        spec,
        project: project.clone(),
    })
}

/// Drop one partial-state component from a partial group-by's output,
/// orphaning the merge stage above. Only components the analyzer can
/// prove missing are dropped: a non-zero component, or component 0 of
/// an aggregate with an argument (whose base columns are unavailable
/// above the partial group-by).
fn drop_partial_component(node: &Plan) -> Option<Plan> {
    let Plan::PartialGroupBy {
        algo,
        input,
        spec,
        project,
    } = node
    else {
        return None;
    };
    let pos = project.iter().position(|c| match c {
        Col::Part(p) => {
            p.part > 0
                || spec
                    .aggs
                    .iter()
                    .any(|(aref, a)| *aref == p.agg && a.arg.is_some())
        }
        _ => false,
    })?;
    let mut project = project.clone();
    project.remove(pos);
    Some(Plan::PartialGroupBy {
        algo: *algo,
        input: input.clone(),
        spec: spec.clone(),
        project,
    })
}

/// Remove a grouping column from the join feeding a group-by: the
/// group-by then groups on a column its input does not produce.
fn drop_join_input_col(node: &Plan) -> Option<Plan> {
    let Plan::GroupBy {
        algo,
        input,
        spec,
        project,
    } = node
    else {
        return None;
    };
    let Plan::Join {
        algo: jalgo,
        left,
        right,
        preds,
        project: jproject,
    } = input.as_ref()
    else {
        return None;
    };
    let g = *spec.group_cols.first()?;
    let pos = jproject.iter().position(|c| *c == g)?;
    let mut jproject = jproject.clone();
    jproject.remove(pos);
    Some(Plan::GroupBy {
        algo: *algo,
        input: Box::new(Plan::Join {
            algo: *jalgo,
            left: left.clone(),
            right: right.clone(),
            preds: preds.clone(),
            project: jproject,
        }),
        spec: spec.clone(),
        project: project.clone(),
    })
}

/// Duplicate a join's left child as its right: the children then
/// overlap in base relations.
fn overlap_join_children(node: &Plan) -> Option<Plan> {
    let Plan::Join {
        algo,
        left,
        preds,
        project,
        ..
    } = node
    else {
        return None;
    };
    Some(Plan::Join {
        algo: *algo,
        left: left.clone(),
        right: left.clone(),
        preds: preds.clone(),
        project: project.clone(),
    })
}

/// Point a scan at a table the catalog does not know.
fn rename_scan_table(node: &Plan) -> Option<Plan> {
    let Plan::Scan {
        rel,
        table,
        filters,
        project,
    } = node
    else {
        return None;
    };
    Some(Plan::Scan {
        rel: *rel,
        table: format!("{table}__mutant"),
        filters: filters.clone(),
        project: project.clone(),
    })
}

/// Rewrite a (non-coalescing) aggregate's argument to read a column no
/// operator produces.
fn agg_arg_unavailable(node: &Plan) -> Option<Plan> {
    let Plan::GroupBy {
        algo,
        input,
        spec,
        project,
    } = node
    else {
        return None;
    };
    let below = input.output_cols();
    let i = (0..spec.aggs.len())
        .find(|&i| spec.aggs[i].arg.is_some() && !below.contains(&Col::part(spec.agg_ref(i), 0)))?;
    let mut spec = spec.clone();
    spec.aggs[i].arg = Some(Expr::col(foreign_col()));
    Some(Plan::GroupBy {
        algo: *algo,
        input: input.clone(),
        spec,
        project: project.clone(),
    })
}

/// Add an unavailable column to a group-by's grouping list.
fn group_on_unavailable(node: &Plan) -> Option<Plan> {
    let Plan::GroupBy {
        algo,
        input,
        spec,
        project,
    } = node
    else {
        return None;
    };
    let mut spec = spec.clone();
    spec.group_cols.push(foreign_col());
    Some(Plan::GroupBy {
        algo: *algo,
        input: input.clone(),
        spec,
        project: project.clone(),
    })
}

/// Add a HAVING predicate over a base column that is neither a grouping
/// column nor an aggregate of this group-by.
fn having_foreign_column(node: &Plan) -> Option<Plan> {
    let Plan::GroupBy {
        algo,
        input,
        spec,
        project,
    } = node
    else {
        return None;
    };
    let mut spec = spec.clone();
    spec.having.push(Predicate::cmp_const(
        Col::base(RelId(62), 0),
        CmpOp::Gt,
        Value::Int(0),
    ));
    Some(Plan::GroupBy {
        algo: *algo,
        input: input.clone(),
        spec,
        project: project.clone(),
    })
}

/// Add a scan filter referencing another relation's column: scan
/// filters must be local.
fn nonlocal_scan_filter(node: &Plan) -> Option<Plan> {
    let Plan::Scan {
        rel,
        table,
        filters,
        project,
    } = node
    else {
        return None;
    };
    let mut filters = filters.clone();
    filters.push(Predicate::eq_cols(Col::base(*rel, 0), foreign_col()));
    Some(Plan::Scan {
        rel: *rel,
        table: table.clone(),
        filters,
        project: project.clone(),
    })
}

/// Add a constant-false filter to a scan. The subtree becomes provably
/// empty — still *correct*, so the dataflow pass reports it as a
/// `dataflow-domain` warning (an unpruned empty subtree), not an error.
/// Constants keep the mutation schema-safe on any table.
fn contradictory_filter(node: &Plan) -> Option<Plan> {
    let Plan::Scan {
        rel,
        table,
        filters,
        project,
    } = node
    else {
        return None;
    };
    let mut filters = filters.clone();
    filters.push(Predicate::new(
        Expr::val(Value::Int(1)),
        CmpOp::Gt,
        Expr::val(Value::Int(2)),
    ));
    Some(Plan::Scan {
        rel: *rel,
        table: table.clone(),
        filters,
        project: project.clone(),
    })
}

/// Flip one declared output type of an `EmptyScan`: the recorded schema
/// no longer matches the catalog's, which the executor's batch path
/// would silently absorb as a Mixed demotion — a `dataflow-type` error.
fn empty_scan_type_lie(node: &Plan) -> Option<Plan> {
    let Plan::EmptyScan {
        covers,
        project,
        types,
        reason,
    } = node
    else {
        return None;
    };
    let mut types = types.clone();
    let first = types.first_mut()?;
    *first = match first {
        DataType::Int => DataType::Str,
        _ => DataType::Int,
    };
    Some(Plan::EmptyScan {
        covers: covers.clone(),
        project: project.clone(),
        types,
        reason: reason.clone(),
    })
}

/// Claim an `EmptyScan` covers a relation the query never declared: the
/// pruning provenance is unaccountable — a `dataflow-bounds` error.
fn empty_scan_phantom_cover(node: &Plan) -> Option<Plan> {
    let Plan::EmptyScan {
        covers,
        project,
        types,
        reason,
    } = node
    else {
        return None;
    };
    let mut covers = covers.clone();
    covers.push(RelId(63));
    Some(Plan::EmptyScan {
        covers,
        project: project.clone(),
        types: types.clone(),
        reason: reason.clone(),
    })
}

/// Remove one pushed grouping column from an eager partial aggregate
/// (and its projection): early grouping then merges rows the merge
/// stage above still needs to tell apart (Definition 1, dualized).
fn eager_drop_pushed_key(node: &Plan) -> Option<Plan> {
    let Plan::PartialAggregate {
        algo,
        input,
        spec,
        project,
    } = node
    else {
        return None;
    };
    let mut spec = spec.clone();
    let g = spec.group_cols.pop()?;
    if spec.group_cols.is_empty() {
        return None; // plan-level validation would trip first
    }
    let project: Vec<Col> = project.iter().copied().filter(|c| *c != g).collect();
    Some(Plan::PartialAggregate {
        algo: *algo,
        input: input.clone(),
        spec,
        project,
    })
}

/// Strip the duplicate-factor count column from an eager partial
/// aggregate: kept duplicate-sensitive aggregates above the join are
/// then merged without compensation for join replication.
fn eager_drop_count(node: &Plan) -> Option<Plan> {
    let Plan::PartialAggregate {
        algo,
        input,
        spec,
        project,
    } = node
    else {
        return None;
    };
    let count_col = spec.count_col()?;
    let mut spec = spec.clone();
    spec.count = None;
    let project: Vec<Col> = project
        .iter()
        .copied()
        .filter(|c| *c != count_col)
        .collect();
    Some(Plan::PartialAggregate {
        algo: *algo,
        input: input.clone(),
        spec,
        project,
    })
}

/// Change the function of a pushed aggregate so the partial states it
/// emits no longer match what the merge stage above expects.
fn eager_component_lie(node: &Plan) -> Option<Plan> {
    let Plan::PartialAggregate {
        algo,
        input,
        spec,
        project,
    } = node
    else {
        return None;
    };
    let mut spec = spec.clone();
    let (_, a) = spec.aggs.first_mut()?;
    a.func = match a.func {
        AggFunc::Sum => AggFunc::Count,
        AggFunc::Count => AggFunc::Sum,
        AggFunc::Min => AggFunc::Max,
        AggFunc::Max => AggFunc::Min,
        AggFunc::Avg => AggFunc::Sum,
        AggFunc::StdDev => AggFunc::Avg,
    };
    Some(Plan::PartialAggregate {
        algo: *algo,
        input: input.clone(),
        spec,
        project: project.clone(),
    })
}

/// Add a join predicate over columns neither side produces.
fn join_pred_unavailable(node: &Plan) -> Option<Plan> {
    let Plan::Join {
        algo,
        left,
        right,
        preds,
        project,
    } = node
    else {
        return None;
    };
    let mut preds = preds.clone();
    preds.push(Predicate::eq_cols(
        Col::base(RelId(60), 1),
        Col::base(RelId(61), 2),
    ));
    Some(Plan::Join {
        algo: *algo,
        left: left.clone(),
        right: right.clone(),
        preds,
        project: project.clone(),
    })
}
