//! Static integrity analysis of operator trees — the `PlanAnalyzer`.
//!
//! The paper's correctness argument rests on structural invariants of
//! each transformation: pull-up must group on the joined relation's key
//! (Definition 1), invariant grouping requires the joined-above
//! relations to match at most one tuple per group, and simple
//! coalescing grouping requires decomposable aggregates whose merge
//! stage mirrors the partial stage (Figure 2). This module turns those
//! invariants — plus a typed schema pass and cost-annotation sanity —
//! into machine-checked properties of any [`Plan`]:
//!
//! * [`schema`] — bottom-up type inference: column resolution, operator
//!   arity, aggregate input types, predicate comparability, and no
//!   references to columns dropped below a group-by;
//! * [`rules`] — transformation legality: the pull-up key rule, the
//!   invariant-grouping key-join condition, the coalescing merge-stage
//!   identity, and the degraded-plan (traditional two-phase) shape;
//! * [`cost`] — cost-model sanity: finite non-negative cost/cardinality
//!   /width and monotone bounds against the inputs;
//! * [`mutate`] — a negative-test harness of seeded plan mutations the
//!   analyzer must reject.
//!
//! The analyzer is wired three ways: as a debug-mode post-condition
//! after optimization and after each pull-up application, as a hard
//! pre-execution gate in the executor (raising
//! [`AggViewError::PlanInvalid`]), and as a user surface via the REPL's
//! `.lint` command and `EXPLAIN VERIFY <select>`.

pub mod cost;
pub mod dataflow;
pub mod mutate;
pub mod rules;
pub mod schema;

use crate::cost::CostModel;
use crate::plan::Plan;
use crate::query::{CanonicalQuery, QueryEnv};
use aggview_common::{AggViewError, Result};
use aggview_storage::Catalog;
use std::fmt;

/// How serious a finding is.
///
/// **Errors** are integrity defects: the plan would compute wrong
/// results or crash, so the pre-execution gate rejects it. **Warnings**
/// are correct-but-suboptimal facts the dataflow pass surfaces (a
/// provably-empty subtree the optimizer did not prune, a plan that
/// cannot be certified Mixed-free); the plan still executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Rejecting: the plan must not execute.
    Error,
    /// Advisory: the plan executes, but something is off.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// Stable diagnostic code for a rule, for scripts and tests that must
/// not depend on message text.
pub fn code_for(rule: &str) -> &'static str {
    match rule {
        "schema" => "AV001",
        "pull-up-key" => "AV002",
        "invariant-grouping" => "AV003",
        "coalescing-merge" => "AV004",
        "matview-extent" => "AV005",
        "degraded-shape" => "AV006",
        "cost-sanity" => "AV007",
        "partial-aggregate" => "AV008",
        "dataflow-domain" => "DF001",
        "dataflow-type" => "DF002",
        "dataflow-bounds" => "DF003",
        _ => "AV000",
    }
}

/// One analyzer finding: which rule fired, where, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule identifier (`schema`, `pull-up-key`,
    /// `invariant-grouping`, `coalescing-merge`, `matview-extent`,
    /// `degraded-shape`, `cost-sanity`, `dataflow-domain`,
    /// `dataflow-type`, `dataflow-bounds`).
    pub rule: &'static str,
    /// Stable diagnostic code (`AV001`…, `DF001`…), derived from the
    /// rule.
    pub code: &'static str,
    /// Whether the finding rejects the plan or merely flags it.
    pub severity: Severity,
    /// Dotted path of the offending operator within the plan tree
    /// (`root`, `root.l.in`, …); empty when the finding is global.
    pub path: String,
    /// Human-readable description of the violated invariant.
    pub message: String,
}

impl Violation {
    pub(crate) fn new(rule: &'static str, message: String) -> Violation {
        Violation {
            rule,
            code: code_for(rule),
            severity: Severity::Error,
            path: String::new(),
            message,
        }
    }

    /// An advisory finding anchored at a plan path.
    pub(crate) fn warn(rule: &'static str, path: String, message: String) -> Violation {
        Violation {
            rule,
            code: code_for(rule),
            severity: Severity::Warning,
            path,
            message,
        }
    }

    /// An error finding anchored at a plan path.
    pub(crate) fn error_at(rule: &'static str, path: String, message: String) -> Violation {
        Violation {
            rule,
            code: code_for(rule),
            severity: Severity::Error,
            path,
            message,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{}]", self.code, self.severity, self.rule)?;
        if !self.path.is_empty() {
            write!(f, " at {}", self.path)?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The outcome of analyzing one plan.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Every finding, in discovery order.
    pub violations: Vec<Violation>,
}

impl AnalysisReport {
    /// True when no *error*-severity invariant was violated (warnings
    /// are advisory and do not reject the plan).
    pub fn is_ok(&self) -> bool {
        !self
            .violations
            .iter()
            .any(|v| v.severity == Severity::Error)
    }

    /// True when there are no findings at all, warnings included.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The findings sorted by severity (errors first), then by code.
    pub fn sorted(&self) -> Vec<&Violation> {
        let mut v: Vec<&Violation> = self.violations.iter().collect();
        v.sort_by_key(|v| (v.severity, v.code, v.path.clone()));
        v
    }

    /// Collapse the report into a single error message (errors first).
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return "plan passes all integrity checks".into();
        }
        let msgs: Vec<String> = self.sorted().iter().map(|v| v.to_string()).collect();
        format!(
            "{} integrity finding(s): {}",
            self.violations.len(),
            msgs.join("; ")
        )
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("plan passes all integrity checks");
        }
        for v in self.sorted() {
            writeln!(f, "{v}")?;
        }
        Ok(())
    }
}

/// Static verifier for [`Plan`] trees.
///
/// Construction is incremental: the catalog alone enables the typed
/// schema pass and the structural transformation rules; adding the
/// query environment enables scan-binding checks; adding the canonical
/// query enables the pull-up key rule (which must know each view's
/// original relations) and the degraded-shape check; adding a cost
/// model enables cost-annotation sanity.
pub struct PlanAnalyzer<'a> {
    catalog: &'a Catalog,
    env: Option<&'a QueryEnv>,
    query: Option<&'a CanonicalQuery>,
    model: Option<CostModel>,
}

impl<'a> PlanAnalyzer<'a> {
    /// Catalog-only analyzer: typed schema pass, invariant-grouping and
    /// coalescing rules.
    pub fn new(catalog: &'a Catalog) -> PlanAnalyzer<'a> {
        PlanAnalyzer {
            catalog,
            env: None,
            query: None,
            model: None,
        }
    }

    /// Enable scan-binding checks (each scan's table must match the
    /// query's relation declaration) and, with a model, cost checks.
    pub fn with_env(mut self, env: &'a QueryEnv) -> PlanAnalyzer<'a> {
        self.env = Some(env);
        self
    }

    /// Enable the pull-up key rule (Definition 1), which needs to know
    /// which relations each view block originally aggregated over.
    /// Implies [`PlanAnalyzer::with_env`].
    pub fn with_query(mut self, query: &'a CanonicalQuery) -> PlanAnalyzer<'a> {
        self.env = Some(&query.env);
        self.query = Some(query);
        self
    }

    /// Enable cost-annotation sanity checks (requires an environment,
    /// via [`PlanAnalyzer::with_env`] or [`PlanAnalyzer::with_query`]).
    pub fn with_model(mut self, model: CostModel) -> PlanAnalyzer<'a> {
        self.model = Some(model);
        self
    }

    /// Run every enabled pass and collect violations.
    pub fn analyze(&self, plan: &Plan) -> AnalysisReport {
        let mut violations = Vec::new();
        schema::check(
            plan,
            self.catalog,
            self.env.map(|e| e.rel_tables.as_slice()),
            &mut violations,
        );
        if let Some(query) = self.query {
            rules::check_pullup_keys(plan, self.catalog, query, &mut violations);
        }
        rules::check_invariant_grouping(plan, self.catalog, &mut violations);
        rules::check_coalescing(plan, &mut violations);
        rules::check_partial_aggregate(plan, &mut violations);
        rules::check_matview(plan, self.catalog, &mut violations);
        if let (Some(model), Some(env)) = (self.model, self.env) {
            cost::check(plan, model, self.catalog, env, &mut violations);
        }
        dataflow::check(
            plan,
            self.catalog,
            self.env.map(|e| e.rel_tables.as_slice()),
            &mut violations,
        );
        AnalysisReport { violations }
    }

    /// Like [`PlanAnalyzer::analyze`], additionally requiring the shape
    /// of a governor-degraded plan: the traditional two-phase form
    /// (each view aggregated over exactly its own relations, no partial
    /// aggregation, the top group-by at the root).
    pub fn analyze_degraded(&self, plan: &Plan) -> AnalysisReport {
        let mut report = self.analyze(plan);
        if let Some(query) = self.query {
            rules::check_degraded_shape(plan, query, &mut report.violations);
        }
        report
    }

    /// Hard gate: `Err(PlanInvalid)` when any enabled check fails.
    pub fn verify(&self, plan: &Plan) -> Result<()> {
        let report = self.analyze(plan);
        if report.is_ok() {
            Ok(())
        } else {
            Err(AggViewError::PlanInvalid(report.summary()))
        }
    }
}
