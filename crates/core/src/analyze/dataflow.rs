//! Bottom-up abstract interpretation of plan trees.
//!
//! The structural rules in [`super::rules`] re-check the paper's
//! transformation invariants; this pass reasons about the *values*
//! flowing through a plan. For every operator output it computes a
//! [`ColDomain`] per column — a closed numeric interval, an optional
//! known constant, and an upper bound on distinct values, seeded from
//! fresh [`aggview_storage::TableStats`] — by propagating intervals
//! through [`Predicate`]s and [`Expr`]s, folding constants, and
//! intersecting the domains of columns equated by join predicates
//! (the implied-predicate fixpoint subsumes an explicit equivalence
//!-class closure: `x = y` and `y = z` converge to a shared interval
//! after two passes).
//!
//! Three consumers sit on top of the domains:
//!
//! * **Contradiction detection** — a predicate whose truth value is
//!   provably `false` over the current domains (e.g. `x > 5 AND x < 3`)
//!   makes the subtree provably empty. The optimizer rewrites such
//!   subtrees to [`Plan::EmptyScan`] via [`prune_empty`]; the analyzer
//!   flags any that survive as `dataflow-domain` warnings.
//! * **Type certification** — the pass assigns every operator a static
//!   type signature. A plan whose every output column types cleanly is
//!   *Mixed-free*: the vectorized executor can pre-allocate typed
//!   columns, and any runtime demotion to `ColumnVec::Mixed` on such a
//!   plan is a counted diagnostic rather than a silent slow path.
//! * **Admission bounds** — guaranteed lower bounds on the rows and
//!   bytes every execution of the plan must charge against the
//!   governor, and on `peak_intermediate_bytes`. The executor rejects
//!   a plan whose bounds already exceed the budget with
//!   [`aggview_common::AggViewError::PlanInadmissible`] before any
//!   work runs.
//!
//! Soundness is the design constraint throughout: statistics seed
//! intervals only when [`aggview_storage::Catalog::stats_fresh`] holds,
//! interval arithmetic widens bounds outward by one ulp, integer
//! domains tighten strict bounds (`x < 5` ⇒ `x ≤ 4`) only for
//! `DataType::Int` columns, and aggregates widen conservatively
//! (`SUM` over a sign-definite argument keeps one bound, `COUNT` is
//! only known to be `≥ 1` per group). The companion proptest executes
//! plans and asserts every concrete output value lies in its predicted
//! interval and every measured resource figure meets its bound.

use super::Violation;
use crate::plan::Plan;
use aggview_common::{AggFunc, CmpOp, Col, DataType, Expr, Predicate, RelId, Value};
use aggview_storage::Catalog;
use std::collections::BTreeMap;

/// Rule name for contradiction findings (provably-empty subtrees the
/// optimizer did not prune). Severity: warning — the plan is correct,
/// just wasteful.
pub const RULE_DOMAIN: &str = "dataflow-domain";
/// Rule name for type-lattice findings: an [`Plan::EmptyScan`] whose
/// recorded types contradict the catalog schema (error), or a plan
/// that cannot be certified Mixed-free (warning).
pub const RULE_TYPE: &str = "dataflow-type";
/// Rule name for admission-bounds bookkeeping defects: an
/// [`Plan::EmptyScan`] covering a relation the query never declared,
/// which would corrupt relation-set and bounds accounting. Severity:
/// error.
pub const RULE_BOUNDS: &str = "dataflow-bounds";

/// A closed interval over `f64`, empty when `lo > hi`.
///
/// Integer column values embed exactly for |v| ≤ 2⁵³; beyond that the
/// seeding and arithmetic paths widen outward, so containment stays
/// sound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
}

impl Interval {
    /// The unconstrained interval (every value).
    pub const FULL: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// The empty interval (no value).
    pub const EMPTY: Interval = Interval {
        lo: f64::INFINITY,
        hi: f64::NEG_INFINITY,
    };

    /// Single-point interval.
    pub fn point(x: f64) -> Interval {
        Interval { lo: x, hi: x }
    }

    /// True when no value satisfies the bounds (NaN endpoints count as
    /// empty).
    pub fn is_empty(self) -> bool {
        !matches!(
            self.lo.partial_cmp(&self.hi),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        )
    }

    /// True when nothing is known.
    pub fn is_full(self) -> bool {
        self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY
    }

    /// True when `x` lies within the bounds.
    pub fn contains(self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Set intersection.
    pub fn intersect(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.max(o.lo),
            hi: self.hi.min(o.hi),
        }
    }

    /// Smallest interval containing both.
    pub fn hull(self, o: Interval) -> Interval {
        if self.is_empty() {
            return o;
        }
        if o.is_empty() {
            return self;
        }
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// The square of every value in the interval (tighter than
    /// `self * self` because both factors are the *same* value).
    pub fn square(self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        let (a, b) = (self.lo * self.lo, self.hi * self.hi);
        if a.is_nan() || b.is_nan() {
            return Interval {
                lo: 0.0,
                hi: f64::INFINITY,
            };
        }
        if self.contains(0.0) {
            widened_nonneg(0.0, a.max(b))
        } else {
            widened_nonneg(a.min(b), a.max(b))
        }
    }
}

/// Interval addition, widened outward by one ulp.
impl std::ops::Add for Interval {
    type Output = Interval;
    fn add(self, o: Interval) -> Interval {
        if self.is_empty() || o.is_empty() {
            return Interval::EMPTY;
        }
        widened(self.lo + o.lo, self.hi + o.hi)
    }
}

/// Interval subtraction, widened outward by one ulp.
impl std::ops::Sub for Interval {
    type Output = Interval;
    fn sub(self, o: Interval) -> Interval {
        if self.is_empty() || o.is_empty() {
            return Interval::EMPTY;
        }
        widened(self.lo - o.hi, self.hi - o.lo)
    }
}

/// Interval multiplication, widened outward by one ulp.
impl std::ops::Mul for Interval {
    type Output = Interval;
    fn mul(self, o: Interval) -> Interval {
        if self.is_empty() || o.is_empty() {
            return Interval::EMPTY;
        }
        let cands = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        if cands.iter().any(|c| c.is_nan()) {
            return Interval::FULL;
        }
        let (mut lo, mut hi) = (cands[0], cands[0]);
        for &c in &cands[1..] {
            lo = lo.min(c);
            hi = hi.max(c);
        }
        widened(lo, hi)
    }
}

/// Interval division. Divisors whose interval touches zero yield the
/// full interval (runtime either errors or produces an arbitrary
/// quotient; both are covered).
impl std::ops::Div for Interval {
    type Output = Interval;
    fn div(self, o: Interval) -> Interval {
        if self.is_empty() || o.is_empty() {
            return Interval::EMPTY;
        }
        if o.contains(0.0) {
            return Interval::FULL;
        }
        let cands = [
            self.lo / o.lo,
            self.lo / o.hi,
            self.hi / o.lo,
            self.hi / o.hi,
        ];
        if cands.iter().any(|c| c.is_nan()) {
            return Interval::FULL;
        }
        let (mut lo, mut hi) = (cands[0], cands[0]);
        for &c in &cands[1..] {
            lo = lo.min(c);
            hi = hi.max(c);
        }
        widened(lo, hi)
    }
}

/// Widen `[lo, hi]` outward by one ulp each side; NaN bounds collapse
/// to the full interval (soundness over precision).
fn widened(lo: f64, hi: f64) -> Interval {
    if lo.is_nan() || hi.is_nan() {
        return Interval::FULL;
    }
    Interval {
        lo: next_down(lo),
        hi: next_up(hi),
    }
}

fn widened_nonneg(lo: f64, hi: f64) -> Interval {
    let w = widened(lo, hi);
    Interval {
        lo: w.lo.max(0.0),
        hi: w.hi,
    }
}

/// Largest representable f64 strictly below `x` (identity at -∞).
fn next_down(x: f64) -> f64 {
    if x.is_nan() || x == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    if x == 0.0 {
        return -f64::MIN_POSITIVE;
    }
    let bits = x.to_bits();
    f64::from_bits(if x > 0.0 { bits - 1 } else { bits + 1 })
}

/// Smallest representable f64 strictly above `x` (identity at +∞).
fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return f64::INFINITY;
    }
    if x == 0.0 {
        return f64::MIN_POSITIVE;
    }
    let bits = x.to_bits();
    f64::from_bits(if x > 0.0 { bits + 1 } else { bits - 1 })
}

/// What the pass knows about one column of one operator's output.
#[derive(Debug, Clone, PartialEq)]
pub struct ColDomain {
    /// Static type, when the type lattice resolved it.
    pub ty: Option<DataType>,
    /// Value bounds (meaningful for numeric columns; `FULL` otherwise).
    pub interval: Interval,
    /// Exact value taken by *every* row, when known.
    pub constant: Option<Value>,
    /// Upper bound on the number of distinct values, when known.
    pub distinct: Option<u64>,
    /// The engine has no NULLs; kept explicit so the lattice is honest
    /// about what it certifies.
    pub nullable: bool,
}

impl ColDomain {
    fn unknown(ty: Option<DataType>) -> ColDomain {
        ColDomain {
            ty,
            interval: Interval::FULL,
            constant: None,
            distinct: None,
            nullable: false,
        }
    }

    /// True when `v` is consistent with this domain (the soundness
    /// predicate the proptest checks against executed rows).
    pub fn admits(&self, v: &Value) -> bool {
        if let Some(ty) = self.ty {
            if v.data_type() != ty {
                return false;
            }
        }
        if let Some(c) = &self.constant {
            if c.try_cmp(v) != Some(std::cmp::Ordering::Equal) {
                return false;
            }
        }
        match v.as_f64() {
            Some(x) => self.interval.contains(x),
            None => true,
        }
    }
}

/// Guaranteed lower bounds on what executing the plan must cost.
///
/// `min_rows` and `min_bytes` bound the *cumulative* output rows and
/// bytes charged against the governor across all operators; `min_peak_bytes`
/// bounds the largest single operator output
/// (`ResultSet::peak_intermediate_bytes`). All three are reachable
/// floors, never estimates: a plan whose floor exceeds the budget can
/// only end in `ResourceExhausted` after wasted work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bounds {
    /// Total output rows across all operators, at minimum.
    pub min_rows: u64,
    /// Total output bytes across all operators, at minimum.
    pub min_bytes: u64,
    /// Largest single-operator output in bytes, at minimum.
    pub min_peak_bytes: u64,
}

/// The result of analyzing one plan.
#[derive(Debug, Clone)]
pub struct Dataflow {
    /// Per-column domains of the root operator's output.
    pub columns: BTreeMap<Col, ColDomain>,
    /// Guaranteed resource floors for admission control.
    pub bounds: Bounds,
    /// True when every operator output typed cleanly: the vectorized
    /// executor can run the whole plan on typed columns, and any
    /// runtime `Mixed` demotion is a diagnostic.
    pub mixed_free: bool,
    /// True when the root provably produces zero rows.
    pub provably_empty: bool,
    /// Root-cause contradictions, as `(plan path, reason)` pairs. Only
    /// the node that *introduced* each contradiction is listed — an
    /// empty child makes every ancestor empty, so ancestors are not
    /// repeated.
    pub contradictions: Vec<(String, String)>,
}

/// Run the pass over `plan`.
///
/// `rel_tables` (the query environment's relation-to-table binding)
/// enables the [`Plan::EmptyScan`] bookkeeping checks; without it they
/// are skipped, never guessed.
pub fn analyze_plan(plan: &Plan, catalog: &Catalog, rel_tables: Option<&[String]>) -> Dataflow {
    let mut cx = Cx {
        catalog,
        rel_tables,
        bounds: Bounds::default(),
        contradictions: Vec::new(),
        type_errors: Vec::new(),
        bounds_errors: Vec::new(),
    };
    let root = summarize(plan, "root", &mut cx);
    Dataflow {
        columns: root.cols,
        bounds: cx.bounds,
        mixed_free: root.typed,
        provably_empty: root.empty,
        contradictions: cx.contradictions,
    }
}

/// Analyzer entry point: surface dataflow findings as violations.
pub(crate) fn check(
    plan: &Plan,
    catalog: &Catalog,
    rel_tables: Option<&[String]>,
    out: &mut Vec<Violation>,
) {
    let mut cx = Cx {
        catalog,
        rel_tables,
        bounds: Bounds::default(),
        contradictions: Vec::new(),
        type_errors: Vec::new(),
        bounds_errors: Vec::new(),
    };
    let root = summarize(plan, "root", &mut cx);
    for (path, why) in cx.contradictions {
        out.push(Violation::warn(
            RULE_DOMAIN,
            path,
            format!("provably empty subtree was not pruned: {why}"),
        ));
    }
    for (path, msg) in cx.type_errors {
        out.push(Violation::error_at(RULE_TYPE, path, msg));
    }
    for (path, msg) in cx.bounds_errors {
        out.push(Violation::error_at(RULE_BOUNDS, path, msg));
    }
    if !root.typed {
        out.push(Violation::warn(
            RULE_TYPE,
            "root".into(),
            "plan cannot be certified Mixed-free: some operator output types did not resolve"
                .into(),
        ));
    }
}

/// Rewrite a provably-empty plan to [`Plan::EmptyScan`].
///
/// Returns the (possibly unchanged) plan and the number of subtrees
/// pruned. Because emptiness propagates through every operator (a join
/// with an empty child is empty, a group-by over no rows produces no
/// groups), the maximal provably-empty subtree containing any
/// contradiction is always the root — so the rewrite is root-or-nothing
/// and the count is 0 or 1. The rewrite is skipped (never guessed) when
/// any output column's type did not resolve.
pub fn prune_empty(plan: &Plan, catalog: &Catalog, rel_tables: Option<&[String]>) -> (Plan, usize) {
    let df = analyze_plan(plan, catalog, rel_tables);
    if !df.provably_empty {
        return (plan.clone(), 0);
    }
    let project: Vec<Col> = plan.output_cols().to_vec();
    let mut types = Vec::with_capacity(project.len());
    for c in &project {
        match df.columns.get(c).and_then(|d| d.ty) {
            Some(t) => types.push(t),
            None => return (plan.clone(), 0),
        }
    }
    let mask = plan.rel_set();
    let covers: Vec<RelId> = (0..64)
        .filter(|b| mask & (1u64 << b) != 0)
        .map(RelId)
        .collect();
    if covers.is_empty() {
        return (plan.clone(), 0);
    }
    let reason = df
        .contradictions
        .first()
        .map(|(path, why)| format!("{why} (at {path})"))
        .unwrap_or_else(|| "contradictory predicates".into());
    (Plan::empty_scan(covers, project, types, reason), 1)
}

/// The static output types of a plan, when every column resolves.
///
/// The vectorized executor uses this to pre-type aggregate output
/// columns instead of falling back to `ColumnVec::Mixed`.
pub fn output_types(plan: &Plan, catalog: &Catalog) -> Option<BTreeMap<Col, DataType>> {
    let df = analyze_plan(plan, catalog, None);
    if !df.mixed_free {
        return None;
    }
    let mut out = BTreeMap::new();
    for (c, d) in df.columns {
        out.insert(c, d.ty?);
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// The bottom-up pass.
// ---------------------------------------------------------------------------

type DomainMap = BTreeMap<Col, ColDomain>;

struct Cx<'a> {
    catalog: &'a Catalog,
    rel_tables: Option<&'a [String]>,
    bounds: Bounds,
    contradictions: Vec<(String, String)>,
    type_errors: Vec<(String, String)>,
    bounds_errors: Vec<(String, String)>,
}

/// Per-node summary flowing up the recursion.
struct Node {
    cols: DomainMap,
    min_rows: u64,
    empty: bool,
    typed: bool,
}

/// Minimum bytes one output row of `cols` (restricted to `project`)
/// can charge, mirroring `Value::width` floors: 8 for numerics, 1 for
/// strings (`len().max(1)`) and bools, 0 when the type is unknown.
fn min_row_width(project: &[Col], cols: &DomainMap) -> u64 {
    project
        .iter()
        .map(|c| match cols.get(c).and_then(|d| d.ty) {
            Some(DataType::Int) | Some(DataType::Float) => 8,
            Some(DataType::Str) | Some(DataType::Bool) => 1,
            None => 0,
        })
        .sum()
}

/// Restrict a domain map to the node's projection; `true` iff every
/// projected column was present and typed.
fn project_domains(project: &[Col], avail: &DomainMap, out: &mut DomainMap) -> bool {
    let mut typed = true;
    for c in project {
        match avail.get(c) {
            Some(d) => {
                typed &= d.ty.is_some();
                out.insert(*c, d.clone());
            }
            None => {
                typed = false;
                out.insert(*c, ColDomain::unknown(None));
            }
        }
    }
    typed
}

/// Finish a node: compute its byte floor, fold it into the running
/// totals and peak, and build the summary.
fn finish(
    cx: &mut Cx<'_>,
    project: &[Col],
    avail: &DomainMap,
    min_rows: u64,
    empty: bool,
    typed: bool,
) -> Node {
    let mut cols = DomainMap::new();
    let projected_typed = project_domains(project, avail, &mut cols);
    let min_rows = if empty { 0 } else { min_rows };
    let min_bytes = min_rows.saturating_mul(min_row_width(project, &cols));
    cx.bounds.min_rows = cx.bounds.min_rows.saturating_add(min_rows);
    cx.bounds.min_bytes = cx.bounds.min_bytes.saturating_add(min_bytes);
    cx.bounds.min_peak_bytes = cx.bounds.min_peak_bytes.max(min_bytes);
    Node {
        cols,
        min_rows,
        empty,
        typed: typed && projected_typed,
    }
}

fn summarize(plan: &Plan, path: &str, cx: &mut Cx<'_>) -> Node {
    match plan {
        Plan::Scan {
            rel,
            table,
            filters,
            project,
        } => {
            let mut avail = DomainMap::new();
            let mut typed = true;
            let mut rows = 0u64;
            match cx.catalog.get(table) {
                Ok(t) => {
                    rows = t.len() as u64;
                    let fresh = cx.catalog.stats_fresh(table);
                    let stats = t.stats();
                    for (i, f) in t.schema().fields().iter().enumerate() {
                        let mut d = ColDomain::unknown(Some(f.ty));
                        if fresh {
                            if let Some(cs) = stats.columns.get(i) {
                                d.distinct = Some(cs.distinct);
                                if f.ty.is_numeric() {
                                    if let (Some(lo), Some(hi)) = (cs.min, cs.max) {
                                        d.interval = Interval { lo, hi };
                                    }
                                }
                            }
                        }
                        avail.insert(Col::base(*rel, i), d);
                    }
                }
                Err(_) => typed = false,
            }
            let (empty, all_true) = apply_filters(filters, &mut avail, path, cx);
            let min_rows = if filters.is_empty() || all_true {
                rows
            } else {
                0
            };
            finish(cx, project, &avail, min_rows, empty, typed)
        }
        Plan::ExtentScan {
            table,
            cols,
            outputs,
            filters,
            project,
            ..
        } => {
            let mut avail = DomainMap::new();
            let mut typed = true;
            let mut rows = 0u64;
            match cx.catalog.get(table) {
                Ok(t) => {
                    rows = t.len() as u64;
                    let fresh = cx.catalog.stats_fresh(table);
                    let stats = t.stats();
                    for (&c, &o) in cols.iter().zip(outputs) {
                        let ty = t.schema().fields().get(c).map(|f| f.ty);
                        let mut d = ColDomain::unknown(ty);
                        if fresh {
                            if let Some(cs) = stats.columns.get(c) {
                                d.distinct = Some(cs.distinct);
                                if ty.is_some_and(DataType::is_numeric) {
                                    if let (Some(lo), Some(hi)) = (cs.min, cs.max) {
                                        d.interval = Interval { lo, hi };
                                    }
                                }
                            }
                        }
                        typed &= ty.is_some();
                        avail.insert(o, d);
                    }
                }
                Err(_) => typed = false,
            }
            let (empty, all_true) = apply_filters(filters, &mut avail, path, cx);
            let min_rows = if filters.is_empty() || all_true {
                rows
            } else {
                0
            };
            finish(cx, project, &avail, min_rows, empty, typed)
        }
        Plan::EmptyScan {
            covers,
            project,
            types,
            ..
        } => {
            let mut avail = DomainMap::new();
            for (c, ty) in project.iter().zip(types) {
                avail.insert(
                    *c,
                    ColDomain {
                        ty: Some(*ty),
                        interval: Interval::EMPTY,
                        constant: None,
                        distinct: Some(0),
                        nullable: false,
                    },
                );
            }
            if let Some(rel_tables) = cx.rel_tables {
                for r in covers {
                    if r.idx() >= rel_tables.len() {
                        cx.bounds_errors.push((
                            path.to_string(),
                            format!(
                                "empty scan covers undeclared relation {r}: relation-set and \
                                 admission-bounds bookkeeping would be corrupted"
                            ),
                        ));
                    }
                }
                for (c, ty) in project.iter().zip(types) {
                    let Some(cr) = c.as_base() else { continue };
                    let Some(table) = rel_tables.get(cr.rel.idx()) else {
                        continue;
                    };
                    let Ok(t) = cx.catalog.get(table) else {
                        continue;
                    };
                    if let Some(f) = t.schema().fields().get(cr.col as usize) {
                        if f.ty != *ty {
                            cx.type_errors.push((
                                path.to_string(),
                                format!(
                                    "empty scan records {c} as {} but `{table}` declares {}",
                                    ty, f.ty
                                ),
                            ));
                        }
                    }
                }
            }
            finish(cx, project, &avail, 0, true, true)
        }
        Plan::Join {
            left,
            right,
            preds,
            project,
            ..
        } => {
            let l = summarize(left, &format!("{path}.l"), cx);
            let r = summarize(right, &format!("{path}.r"), cx);
            let mut avail = l.cols;
            avail.extend(r.cols);
            let mut empty = l.empty || r.empty;
            let mut all_true = true;
            // An empty child already makes the join vacuous; the
            // contradiction was recorded where it arose.
            if !empty {
                let (e, t) = apply_filters(preds, &mut avail, path, cx);
                empty = e;
                all_true = t;
            }
            let min_rows = if !empty && all_true {
                l.min_rows.saturating_mul(r.min_rows)
            } else {
                0
            };
            finish(cx, project, &avail, min_rows, empty, l.typed && r.typed)
        }
        Plan::GroupBy {
            input,
            spec,
            project,
            ..
        } => {
            let i = summarize(input, &format!("{path}.in"), cx);
            let mut avail = DomainMap::new();
            let mut typed = i.typed;
            for g in &spec.group_cols {
                match i.cols.get(g) {
                    Some(d) => {
                        avail.insert(*g, d.clone());
                    }
                    None => {
                        typed = false;
                        avail.insert(*g, ColDomain::unknown(None));
                    }
                }
            }
            for (idx, a) in spec.aggs.iter().enumerate() {
                let d = agg_domain(a.func, a.arg.as_ref(), &i.cols);
                typed &= d.ty.is_some();
                avail.insert(Col::agg(spec.owner, idx), d);
            }
            let mut empty = i.empty;
            let mut all_true = true;
            if !empty {
                let (e, t) = apply_filters(&spec.having, &mut avail, path, cx);
                empty = e;
                all_true = t;
            }
            let min_rows = if !empty && i.min_rows >= 1 && (spec.having.is_empty() || all_true) {
                1
            } else {
                0
            };
            finish(cx, project, &avail, min_rows, empty, typed)
        }
        Plan::PartialGroupBy {
            input,
            spec,
            project,
            ..
        } => {
            let i = summarize(input, &format!("{path}.in"), cx);
            let mut avail = DomainMap::new();
            let mut typed = i.typed;
            for g in &spec.group_cols {
                match i.cols.get(g) {
                    Some(d) => {
                        avail.insert(*g, d.clone());
                    }
                    None => {
                        typed = false;
                        avail.insert(*g, ColDomain::unknown(None));
                    }
                }
            }
            for (aref, a) in &spec.aggs {
                let parts = partial_domains(a.func, a.arg.as_ref(), &i.cols);
                for (k, d) in parts.into_iter().enumerate() {
                    typed &= d.ty.is_some();
                    avail.insert(Col::part(*aref, k), d);
                }
            }
            let min_rows = if !i.empty && i.min_rows >= 1 { 1 } else { 0 };
            finish(cx, project, &avail, min_rows, i.empty, typed)
        }
        Plan::PartialAggregate {
            input,
            spec,
            project,
            ..
        } => {
            let i = summarize(input, &format!("{path}.in"), cx);
            let mut avail = DomainMap::new();
            let mut typed = i.typed;
            for g in &spec.group_cols {
                match i.cols.get(g) {
                    Some(d) => {
                        avail.insert(*g, d.clone());
                    }
                    None => {
                        typed = false;
                        avail.insert(*g, ColDomain::unknown(None));
                    }
                }
            }
            for (aref, a) in &spec.aggs {
                let parts = partial_domains(a.func, a.arg.as_ref(), &i.cols);
                for (k, d) in parts.into_iter().enumerate() {
                    typed &= d.ty.is_some();
                    avail.insert(Col::part(*aref, k), d);
                }
            }
            // The duplicate-factor column is a per-group COUNT(*):
            // every group is formed from at least one row.
            if let Some(c) = spec.count_col() {
                avail.insert(
                    c,
                    ColDomain {
                        ty: Some(DataType::Int),
                        interval: Interval {
                            lo: 1.0,
                            hi: f64::INFINITY,
                        },
                        constant: None,
                        distinct: None,
                        nullable: false,
                    },
                );
            }
            let min_rows = if !i.empty && i.min_rows >= 1 { 1 } else { 0 };
            finish(cx, project, &avail, min_rows, i.empty, typed)
        }
    }
}

/// Domain of a finalized aggregate output.
fn agg_domain(func: AggFunc, arg: Option<&Expr>, input: &DomainMap) -> ColDomain {
    let arg_dom = arg.map(|e| eval_expr(e, input));
    let arg_ty = arg_dom.as_ref().and_then(|d| d.ty);
    let ty = func.output_type(arg_ty).ok();
    let arg_iv = arg_dom.map_or(Interval::FULL, |d| d.interval);
    let interval = match func {
        // Groups are formed from rows, so every group holds ≥ 1.
        AggFunc::Count => Interval {
            lo: 1.0,
            hi: f64::INFINITY,
        },
        AggFunc::Sum => sum_widen(arg_iv),
        AggFunc::Min | AggFunc::Max => arg_iv,
        // The mean of values from an interval stays inside it.
        AggFunc::Avg => arg_iv,
        AggFunc::StdDev => Interval {
            lo: 0.0,
            hi: f64::INFINITY,
        },
    };
    ColDomain {
        ty,
        interval,
        constant: None,
        distinct: None,
        nullable: false,
    }
}

/// Domains of the partial-state components (paper Figure 2 order).
fn partial_domains(func: AggFunc, arg: Option<&Expr>, input: &DomainMap) -> Vec<ColDomain> {
    let arg_dom = arg.map(|e| eval_expr(e, input));
    let arg_ty = arg_dom.as_ref().and_then(|d| d.ty);
    let arg_iv = arg_dom.map_or(Interval::FULL, |d| d.interval);
    let tys = func.partial_types(arg_ty).ok();
    let count = Interval {
        lo: 1.0,
        hi: f64::INFINITY,
    };
    let nonneg = Interval {
        lo: 0.0,
        hi: f64::INFINITY,
    };
    let ivs: Vec<Interval> = match func {
        AggFunc::Count => vec![count],
        AggFunc::Sum => vec![sum_widen(arg_iv)],
        AggFunc::Min | AggFunc::Max => vec![arg_iv],
        AggFunc::Avg => vec![sum_widen(arg_iv), count],
        AggFunc::StdDev => vec![
            sum_widen(arg_iv),
            sum_widen(arg_iv.square()).hull(nonneg).intersect(nonneg),
            count,
        ],
    };
    ivs.into_iter()
        .enumerate()
        .map(|(k, interval)| ColDomain {
            ty: tys.as_ref().and_then(|t| t.get(k).copied()),
            interval,
            constant: None,
            distinct: None,
            nullable: false,
        })
        .collect()
}

/// Sum of ≥ 1 values from `arg`: sign-definite arguments keep one
/// bound, mixed-sign arguments widen fully.
fn sum_widen(arg: Interval) -> Interval {
    if arg.is_empty() {
        return Interval::EMPTY;
    }
    if arg.lo >= 0.0 {
        Interval {
            lo: arg.lo,
            hi: f64::INFINITY,
        }
    } else if arg.hi <= 0.0 {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: arg.hi,
        }
    } else {
        Interval::FULL
    }
}

// ---------------------------------------------------------------------------
// Expressions and predicates over domains.
// ---------------------------------------------------------------------------

/// Abstract value of an expression over the current domains.
struct ExprDom {
    ty: Option<DataType>,
    interval: Interval,
    constant: Option<Value>,
}

fn eval_expr(e: &Expr, cols: &DomainMap) -> ExprDom {
    match e {
        Expr::Const(v) => ExprDom {
            ty: Some(v.data_type()),
            interval: v.as_f64().map_or(Interval::FULL, Interval::point),
            constant: Some(v.clone()),
        },
        Expr::Col(c) => match cols.get(c) {
            Some(d) => ExprDom {
                ty: d.ty,
                interval: d.interval,
                constant: d.constant.clone(),
            },
            None => ExprDom {
                ty: None,
                interval: Interval::FULL,
                constant: None,
            },
        },
        Expr::Binary { op, left, right } => {
            let l = eval_expr(left, cols);
            let r = eval_expr(right, cols);
            let ty = match (l.ty, r.ty) {
                (Some(a), Some(b)) if a.is_numeric() && b.is_numeric() => {
                    if *op == aggview_common::BinaryOp::Div
                        || a == DataType::Float
                        || b == DataType::Float
                    {
                        Some(DataType::Float)
                    } else {
                        Some(DataType::Int)
                    }
                }
                _ => None,
            };
            let interval = match op {
                aggview_common::BinaryOp::Add => l.interval + r.interval,
                aggview_common::BinaryOp::Sub => l.interval - r.interval,
                aggview_common::BinaryOp::Mul => l.interval * r.interval,
                aggview_common::BinaryOp::Div => l.interval / r.interval,
            };
            // Constant folding mirrors `eval_binary` exactly: checked
            // integer arithmetic (overflow would error at runtime, so
            // the fold abstains), float division by a non-zero.
            let constant = match (&l.constant, &r.constant) {
                (Some(a), Some(b)) => fold_binary(*op, a, b),
                _ => None,
            };
            ExprDom {
                ty,
                interval,
                constant,
            }
        }
    }
}

/// Constant-fold `a op b` with the runtime's exact semantics, or
/// abstain (`None`) where the runtime would error.
fn fold_binary(op: aggview_common::BinaryOp, a: &Value, b: &Value) -> Option<Value> {
    use aggview_common::BinaryOp;
    if let (Some(x), Some(y)) = (a.as_i64(), b.as_i64()) {
        return match op {
            BinaryOp::Add => x.checked_add(y).map(Value::Int),
            BinaryOp::Sub => x.checked_sub(y).map(Value::Int),
            BinaryOp::Mul => x.checked_mul(y).map(Value::Int),
            BinaryOp::Div => {
                if y == 0 {
                    None
                } else {
                    Some(Value::Float(x as f64 / y as f64))
                }
            }
        };
    }
    let (x, y) = (a.as_f64()?, b.as_f64()?);
    match op {
        BinaryOp::Add => Some(Value::Float(x + y)),
        BinaryOp::Sub => Some(Value::Float(x - y)),
        BinaryOp::Mul => Some(Value::Float(x * y)),
        BinaryOp::Div => {
            if y == 0.0 {
                None
            } else {
                Some(Value::Float(x / y))
            }
        }
    }
}

/// Three-valued truth of a predicate over the current domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    True,
    False,
    Unknown,
}

fn truth(p: &Predicate, cols: &DomainMap) -> Tri {
    let l = eval_expr(&p.left, cols);
    let r = eval_expr(&p.right, cols);
    if let (Some(a), Some(b)) = (&l.constant, &r.constant) {
        if let Some(ord) = a.try_cmp(b) {
            return if p.op.matches(ord) {
                Tri::True
            } else {
                Tri::False
            };
        }
        return Tri::Unknown;
    }
    let (a, b) = (l.interval, r.interval);
    if a.is_empty() || b.is_empty() {
        return Tri::Unknown;
    }
    match p.op {
        CmpOp::Lt => cmp_tri(a.hi < b.lo, a.lo >= b.hi),
        CmpOp::Le => cmp_tri(a.hi <= b.lo, a.lo > b.hi),
        CmpOp::Gt => cmp_tri(a.lo > b.hi, a.hi <= b.lo),
        CmpOp::Ge => cmp_tri(a.lo >= b.hi, a.hi < b.lo),
        CmpOp::Eq => {
            if a.hi < b.lo || b.hi < a.lo {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        CmpOp::Ne => {
            if a.hi < b.lo || b.hi < a.lo {
                Tri::True
            } else {
                Tri::Unknown
            }
        }
    }
}

fn cmp_tri(provably: bool, refutably: bool) -> Tri {
    if provably {
        Tri::True
    } else if refutably {
        Tri::False
    } else {
        Tri::Unknown
    }
}

/// Apply a conjunction of predicates to the domains, to fixpoint.
///
/// Returns `(empty, all_provably_true)`:
/// * `empty` — some predicate is provably false over the domains, or a
///   column's refined interval became empty; the node produces no
///   rows. The contradiction is recorded in `cx` with this node's
///   path.
/// * `all_provably_true` — every predicate was already provably true
///   over the domains *before* refinement, so the node passes all its
///   input rows through (used for row lower bounds; evaluated against
///   the pre-refinement snapshot to avoid predicates certifying
///   themselves).
fn apply_filters(
    preds: &[Predicate],
    cols: &mut DomainMap,
    path: &str,
    cx: &mut Cx<'_>,
) -> (bool, bool) {
    if preds.is_empty() {
        return (false, true);
    }
    let all_true = preds.iter().all(|p| truth(p, cols) == Tri::True);
    // Fixpoint: equalities propagate transitively (x = y, y = z), so a
    // second pass can tighten what the first learned. Plans are small;
    // cap the iteration defensively.
    for _ in 0..8 {
        let before = cols.clone();
        for p in preds {
            if let Err(why) = refine(p, cols) {
                cx.contradictions.push((path.to_string(), why));
                return (true, false);
            }
        }
        if *cols == before {
            break;
        }
    }
    (false, all_true)
}

/// Refine domains with one predicate; `Err(reason)` on contradiction.
fn refine(p: &Predicate, cols: &mut DomainMap) -> Result<(), String> {
    if truth(p, cols) == Tri::False {
        return Err(format!("predicate `{p}` is provably false"));
    }
    let r = eval_expr(&p.right, cols);
    refine_side(&p.left, p.op, &r, cols, p)?;
    let l = eval_expr(&p.left, cols);
    refine_side(&p.right, p.op.flipped(), &l, cols, p)?;
    Ok(())
}

/// Tighten the domain of `side` (when it is a bare column) against the
/// abstract value of the other side.
fn refine_side(
    side: &Expr,
    op: CmpOp,
    other: &ExprDom,
    cols: &mut DomainMap,
    p: &Predicate,
) -> Result<(), String> {
    let Expr::Col(c) = side else { return Ok(()) };
    let Some(d) = cols.get_mut(c) else {
        return Ok(());
    };
    let is_int = d.ty == Some(DataType::Int);
    let numeric = d.ty.is_some_and(DataType::is_numeric);
    match op {
        CmpOp::Eq => {
            if let Some(v) = &other.constant {
                match &d.constant {
                    Some(cur) => {
                        if cur.try_cmp(v) == Some(std::cmp::Ordering::Equal) {
                            // Already known.
                        } else if cur.try_cmp(v).is_some() {
                            return Err(format!(
                                "predicate `{p}` requires {c} = {v} but {c} is always {cur}"
                            ));
                        }
                    }
                    None => {
                        if d.ty.is_none() || d.ty == Some(v.data_type()) || numeric {
                            d.constant = Some(v.clone());
                            d.distinct = Some(1);
                        }
                    }
                }
            }
            if numeric {
                d.interval = d.interval.intersect(other.interval);
            }
        }
        CmpOp::Ne => {
            // Inequality prunes nothing from an interval; pure
            // contradiction (constant vs constant) is caught by
            // `truth` before refinement.
        }
        CmpOp::Lt if numeric => {
            let mut hi = other.interval.hi;
            if is_int {
                hi = if hi.fract() == 0.0 {
                    hi - 1.0
                } else {
                    hi.floor()
                };
            }
            d.interval.hi = d.interval.hi.min(hi);
        }
        CmpOp::Le if numeric => {
            let mut hi = other.interval.hi;
            if is_int {
                hi = hi.floor();
            }
            d.interval.hi = d.interval.hi.min(hi);
        }
        CmpOp::Gt if numeric => {
            let mut lo = other.interval.lo;
            if is_int {
                lo = if lo.fract() == 0.0 {
                    lo + 1.0
                } else {
                    lo.ceil()
                };
            }
            d.interval.lo = d.interval.lo.max(lo);
        }
        CmpOp::Ge if numeric => {
            let mut lo = other.interval.lo;
            if is_int {
                lo = lo.ceil();
            }
            d.interval.lo = d.interval.lo.max(lo);
        }
        _ => {}
    }
    if numeric {
        if d.interval.is_empty() {
            return Err(format!(
                "predicate `{p}` leaves {c} with an empty value domain"
            ));
        }
        // A pinched interval names the constant.
        if d.constant.is_none() && d.interval.lo == d.interval.hi && d.interval.lo.is_finite() {
            let x = d.interval.lo;
            d.constant = match d.ty {
                Some(DataType::Int) if x.fract() == 0.0 && x.abs() < 9.0e15 => {
                    Some(Value::Int(x as i64))
                }
                Some(DataType::Float) => Some(Value::Float(x)),
                _ => None,
            };
            if d.constant.is_some() {
                d.distinct = Some(1);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::Severity;
    use super::*;
    use crate::plan::{all_cols, GroupBySpec};
    use aggview_common::{AggSpec, Schema, ViewId};
    use aggview_storage::Table;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let mut b = Table::builder(
            "emp",
            Schema::of(&[
                ("eno", DataType::Int),
                ("dno", DataType::Int),
                ("sal", DataType::Float),
            ]),
        );
        for i in 0..10i64 {
            b = b
                .row(vec![
                    Value::Int(i),
                    Value::Int(i % 3),
                    Value::Float(1000.0 + 100.0 * i as f64),
                ])
                .unwrap();
        }
        cat.add(b.build().unwrap()).unwrap();
        cat
    }

    fn scan(filters: Vec<Predicate>) -> Plan {
        Plan::scan(RelId(0), "emp", filters, all_cols(RelId(0), 3))
    }

    #[test]
    fn interval_arithmetic_is_outward() {
        let a = Interval { lo: 1.0, hi: 2.0 };
        let b = Interval { lo: -3.0, hi: 5.0 };
        let s = a + b;
        assert!(s.lo <= -2.0 && s.hi >= 7.0);
        let d = a - b;
        assert!(d.lo <= -4.0 && d.hi >= 5.0);
        let m = a * b;
        assert!(m.lo <= -6.0 && m.hi >= 10.0);
        assert!((a / b).is_full(), "divisor spans zero");
        let q = a / Interval { lo: 2.0, hi: 4.0 };
        assert!(q.lo <= 0.25 && q.hi >= 1.0);
    }

    #[test]
    fn square_is_tighter_than_mul() {
        let a = Interval { lo: -2.0, hi: 3.0 };
        let sq = a.square();
        assert!(sq.lo <= 0.0 && sq.lo >= -1e-9);
        assert!(sq.hi >= 9.0 && sq.hi < 10.0);
    }

    #[test]
    fn stats_seed_scan_domains() {
        let cat = catalog();
        let df = analyze_plan(&scan(vec![]), &cat, None);
        let sal = &df.columns[&Col::base(RelId(0), 2)];
        assert_eq!(sal.ty, Some(DataType::Float));
        assert!(sal.interval.contains(1000.0) && sal.interval.contains(1900.0));
        assert!(!sal.interval.contains(999.0) || sal.interval.lo <= 999.0);
        assert_eq!(sal.distinct, Some(10));
        assert!(df.mixed_free);
        assert!(!df.provably_empty);
        // Unfiltered scan must charge all 10 rows: 3 numeric cols × 8B.
        assert_eq!(df.bounds.min_rows, 10);
        assert_eq!(df.bounds.min_bytes, 240);
        assert_eq!(df.bounds.min_peak_bytes, 240);
    }

    #[test]
    fn stale_stats_do_not_seed() {
        let cat = catalog();
        cat.mark_modified("emp").unwrap();
        let df = analyze_plan(&scan(vec![]), &cat, None);
        let sal = &df.columns[&Col::base(RelId(0), 2)];
        assert!(sal.interval.is_full());
        assert_eq!(sal.distinct, None);
    }

    #[test]
    fn contradiction_is_detected_with_int_tightening() {
        let cat = catalog();
        // eno > 5 AND eno < 3 — classic contradiction.
        let p = scan(vec![
            Predicate::cmp_const(Col::base(RelId(0), 0), CmpOp::Gt, Value::Int(5)),
            Predicate::cmp_const(Col::base(RelId(0), 0), CmpOp::Lt, Value::Int(3)),
        ]);
        let df = analyze_plan(&p, &cat, None);
        assert!(df.provably_empty);
        assert_eq!(df.contradictions.len(), 1);
        // Int tightening: eno < 6 AND eno > 4 pins eno = 5.
        let p = scan(vec![
            Predicate::cmp_const(Col::base(RelId(0), 0), CmpOp::Lt, Value::Int(6)),
            Predicate::cmp_const(Col::base(RelId(0), 0), CmpOp::Gt, Value::Int(4)),
        ]);
        let df = analyze_plan(&p, &cat, None);
        assert!(!df.provably_empty);
        let eno = &df.columns[&Col::base(RelId(0), 0)];
        assert_eq!(eno.constant, Some(Value::Int(5)));
    }

    #[test]
    fn equality_chain_propagates_intervals() {
        let cat = catalog();
        let l = scan(vec![Predicate::cmp_const(
            Col::base(RelId(0), 1),
            CmpOp::Le,
            Value::Int(1),
        )]);
        let r = Plan::scan(RelId(1), "emp", vec![], all_cols(RelId(1), 3));
        let join = Plan::join(
            l,
            r,
            vec![Predicate::eq_cols(
                Col::base(RelId(0), 1),
                Col::base(RelId(1), 1),
            )],
            vec![Col::base(RelId(0), 0), Col::base(RelId(1), 1)],
        );
        let df = analyze_plan(&join, &cat, None);
        let rd = &df.columns[&Col::base(RelId(1), 1)];
        assert!(rd.interval.hi <= 1.0, "equated column inherits the bound");
    }

    #[test]
    fn contradictory_join_pred_empties_the_join() {
        let cat = catalog();
        let l = scan(vec![Predicate::cmp_const(
            Col::base(RelId(0), 0),
            CmpOp::Le,
            Value::Int(2),
        )]);
        let r = Plan::scan(
            RelId(1),
            "emp",
            vec![Predicate::cmp_const(
                Col::base(RelId(1), 0),
                CmpOp::Ge,
                Value::Int(7),
            )],
            all_cols(RelId(1), 3),
        );
        let join = Plan::join(
            l,
            r,
            vec![Predicate::eq_cols(
                Col::base(RelId(0), 0),
                Col::base(RelId(1), 0),
            )],
            vec![Col::base(RelId(0), 0)],
        );
        let df = analyze_plan(&join, &cat, None);
        assert!(df.provably_empty);
    }

    #[test]
    fn prune_rewrites_root_to_empty_scan() {
        let cat = catalog();
        let p = scan(vec![
            Predicate::cmp_const(Col::base(RelId(0), 2), CmpOp::Gt, Value::Float(5000.0)),
            Predicate::cmp_const(Col::base(RelId(0), 2), CmpOp::Lt, Value::Float(3000.0)),
        ]);
        let (pruned, n) = prune_empty(&p, &cat, None);
        assert_eq!(n, 1);
        match &pruned {
            Plan::EmptyScan { covers, types, .. } => {
                assert_eq!(covers, &vec![RelId(0)]);
                assert_eq!(types, &vec![DataType::Int, DataType::Int, DataType::Float]);
            }
            other => panic!("expected EmptyScan, got {other:?}"),
        }
        let (same, n) = prune_empty(&scan(vec![]), &cat, None);
        assert_eq!(n, 0);
        assert_eq!(same, scan(vec![]));
    }

    #[test]
    fn group_by_domains_and_bounds() {
        let cat = catalog();
        let spec = GroupBySpec {
            owner: ViewId::View(0),
            group_cols: vec![Col::base(RelId(0), 1)],
            aggs: vec![
                AggSpec::count_star(),
                AggSpec::new(AggFunc::Sum, Expr::col(Col::base(RelId(0), 2))),
                AggSpec::new(AggFunc::Avg, Expr::col(Col::base(RelId(0), 2))),
            ],
            having: vec![],
        };
        let project = vec![
            Col::base(RelId(0), 1),
            Col::agg(ViewId::View(0), 0),
            Col::agg(ViewId::View(0), 1),
            Col::agg(ViewId::View(0), 2),
        ];
        let gb = Plan::group_by(scan(vec![]), spec, project);
        let df = analyze_plan(&gb, &cat, None);
        assert!(df.mixed_free);
        let cnt = &df.columns[&Col::agg(ViewId::View(0), 0)];
        assert_eq!(cnt.ty, Some(DataType::Int));
        assert!(cnt.interval.lo >= 1.0);
        let sum = &df.columns[&Col::agg(ViewId::View(0), 1)];
        assert_eq!(sum.ty, Some(DataType::Float));
        assert!(sum.interval.lo <= 1000.0 && sum.interval.lo > 0.0);
        let avg = &df.columns[&Col::agg(ViewId::View(0), 2)];
        assert!(avg.interval.contains(1450.0));
        assert!(!avg.interval.contains(100.0));
        // Scan (10 rows) + one guaranteed group.
        assert_eq!(df.bounds.min_rows, 11);
        assert!(df.bounds.min_peak_bytes >= 240);
    }

    #[test]
    fn having_contradiction_empties_group_by() {
        let cat = catalog();
        let spec = GroupBySpec {
            owner: ViewId::View(0),
            group_cols: vec![Col::base(RelId(0), 1)],
            aggs: vec![AggSpec::new(
                AggFunc::Min,
                Expr::col(Col::base(RelId(0), 2)),
            )],
            // MIN(sal) < 0 is impossible: sal ∈ [1000, 1900].
            having: vec![Predicate::cmp_const(
                Col::agg(ViewId::View(0), 0),
                CmpOp::Lt,
                Value::Float(0.0),
            )],
        };
        let gb = Plan::group_by(
            scan(vec![]),
            spec,
            vec![Col::base(RelId(0), 1), Col::agg(ViewId::View(0), 0)],
        );
        let df = analyze_plan(&gb, &cat, None);
        assert!(df.provably_empty);
        // COUNT must stay unbounded above: `HAVING count > N` is never
        // a contradiction.
        let spec = GroupBySpec {
            owner: ViewId::View(0),
            group_cols: vec![Col::base(RelId(0), 1)],
            aggs: vec![AggSpec::count_star()],
            having: vec![Predicate::cmp_const(
                Col::agg(ViewId::View(0), 0),
                CmpOp::Gt,
                Value::Int(1_000_000),
            )],
        };
        let gb = Plan::group_by(
            scan(vec![]),
            spec,
            vec![Col::base(RelId(0), 1), Col::agg(ViewId::View(0), 0)],
        );
        let df = analyze_plan(&gb, &cat, None);
        assert!(!df.provably_empty);
    }

    #[test]
    fn empty_scan_type_lie_is_an_error() {
        let cat = catalog();
        let rels = vec!["emp".to_string()];
        let good = Plan::empty_scan(
            vec![RelId(0)],
            vec![Col::base(RelId(0), 0)],
            vec![DataType::Int],
            "test",
        );
        let mut out = Vec::new();
        check(&good, &cat, Some(&rels), &mut out);
        assert!(out.is_empty(), "{out:?}");
        let lie = Plan::empty_scan(
            vec![RelId(0)],
            vec![Col::base(RelId(0), 0)],
            vec![DataType::Str],
            "test",
        );
        let mut out = Vec::new();
        check(&lie, &cat, Some(&rels), &mut out);
        assert!(out
            .iter()
            .any(|v| v.rule == RULE_TYPE && v.severity == Severity::Error));
        let phantom = Plan::empty_scan(
            vec![RelId(0), RelId(9)],
            vec![Col::base(RelId(0), 0)],
            vec![DataType::Int],
            "test",
        );
        let mut out = Vec::new();
        check(&phantom, &cat, Some(&rels), &mut out);
        assert!(out
            .iter()
            .any(|v| v.rule == RULE_BOUNDS && v.severity == Severity::Error));
    }

    #[test]
    fn unpruned_contradiction_is_a_warning() {
        let cat = catalog();
        let p = scan(vec![
            Predicate::cmp_const(Col::base(RelId(0), 0), CmpOp::Gt, Value::Int(5)),
            Predicate::cmp_const(Col::base(RelId(0), 0), CmpOp::Lt, Value::Int(3)),
        ]);
        let mut out = Vec::new();
        check(&p, &cat, None, &mut out);
        let w = out
            .iter()
            .find(|v| v.rule == RULE_DOMAIN)
            .expect("domain warning");
        assert_eq!(w.severity, Severity::Warning);
        assert_eq!(w.code, "DF001");
        assert_eq!(w.path, "root");
    }

    #[test]
    fn filtered_scan_has_zero_row_floor() {
        let cat = catalog();
        let p = scan(vec![Predicate::cmp_const(
            Col::base(RelId(0), 0),
            CmpOp::Gt,
            Value::Int(5),
        )]);
        let df = analyze_plan(&p, &cat, None);
        assert_eq!(df.bounds.min_rows, 0);
        // A provably-true filter keeps the floor at the table size.
        let p = scan(vec![Predicate::cmp_const(
            Col::base(RelId(0), 0),
            CmpOp::Ge,
            Value::Int(0),
        )]);
        let df = analyze_plan(&p, &cat, None);
        assert_eq!(df.bounds.min_rows, 10);
    }

    #[test]
    fn output_types_resolves_agg_columns() {
        let cat = catalog();
        let spec = GroupBySpec {
            owner: ViewId::View(0),
            group_cols: vec![Col::base(RelId(0), 1)],
            aggs: vec![
                AggSpec::count_star(),
                AggSpec::new(AggFunc::Avg, Expr::col(Col::base(RelId(0), 2))),
            ],
            having: vec![],
        };
        let gb = Plan::group_by(
            scan(vec![]),
            spec,
            vec![
                Col::base(RelId(0), 1),
                Col::agg(ViewId::View(0), 0),
                Col::agg(ViewId::View(0), 1),
            ],
        );
        let tys = output_types(&gb, &cat).expect("typed plan");
        assert_eq!(tys[&Col::agg(ViewId::View(0), 0)], DataType::Int);
        assert_eq!(tys[&Col::agg(ViewId::View(0), 1)], DataType::Float);
        assert_eq!(tys[&Col::base(RelId(0), 1)], DataType::Int);
    }
}
