//! Matching query blocks against materialized aggregate-view extents.
//!
//! A materialized view stores the result of an aggregate view — and,
//! for decomposable aggregates, the mergeable partial states of
//! Figure 2 — in an *extent* table registered in the catalog. During
//! block optimization the matcher checks whether a single-block query
//! (or a pulled-up block Φ(V₀, W) whose leaves are all base-table
//! scans) is *subsumed* by a registered extent:
//!
//! * the block joins exactly the view's tables (a bijection θ from the
//!   view's local relations to the block's relations, matched by table
//!   name);
//! * every view predicate appears among the block's predicates under θ
//!   (the extent holds no fewer rows than the block needs), and every
//!   residual block predicate references only the view's grouping
//!   columns (so it can compensate as an extent-scan filter);
//! * the block's grouping columns are a subset of θ(view grouping
//!   columns), and every block aggregate is one of the view's
//!   aggregates under θ.
//!
//! When the grouping matches exactly, the extent's *finalized* columns
//! answer the block directly. When the block groups strictly coarser, a
//! compensating group-by coalesces the extent's stored partial states
//! (requires every matched aggregate to store partial state — see
//! [`aggview_storage::stores_partial_state`]).
//!
//! The rewritten access path is enumerated *in addition to* the inlined
//! plan and chosen purely by cost, so the optimizer's never-worse
//! guarantee is untouched. Stale extents (base data modified since the
//! last build or refresh) are never matched.

use crate::cost::CardEstimator;
use crate::governor::ResourceGovernor;
use crate::optimizer::dp::DpEntry;
use crate::optimizer::greedy::BlockQuery;
use crate::optimizer::stats::SearchStats;
use crate::plan::{GroupBySpec, Plan};
use aggview_common::{AggSpec, Col, Predicate, RelId, Result};
use aggview_storage::{stores_partial_state, Catalog, MatViewMeta};
use std::collections::BTreeSet;

/// The block's leaves, flattened: parallel relation / table-name lists
/// plus every predicate (scan-local and multi-relation).
struct FlatBlock {
    rels: Vec<RelId>,
    tables: Vec<String>,
    preds: Vec<Predicate>,
}

/// Flatten a block whose items are all plain base-table scans; `None`
/// when any leaf is already a planned sub-block (extents only answer
/// blocks over base tables).
fn flatten(q: &BlockQuery) -> Option<FlatBlock> {
    let mut rels = Vec::with_capacity(q.items.len());
    let mut tables = Vec::with_capacity(q.items.len());
    let mut preds: Vec<Predicate> = Vec::new();
    for it in &q.items {
        let Plan::Scan {
            rel,
            table,
            filters,
            ..
        } = &it.plan
        else {
            return None;
        };
        rels.push(*rel);
        tables.push(table.clone());
        preds.extend(filters.iter().cloned());
    }
    preds.extend(q.preds.iter().cloned());
    Some(FlatBlock {
        rels,
        tables,
        preds,
    })
}

/// Find the cheapest matching extent access path for the block, if any
/// fresh registered materialized view subsumes it. Each candidate is
/// costed through `est` and charged to the search budget; the caller
/// compares the result against its best inlined plan.
pub fn best_extent_entry(
    q: &BlockQuery,
    est: &CardEstimator<'_>,
    catalog: &Catalog,
    stats: &mut SearchStats,
    gov: &ResourceGovernor,
) -> Result<Option<DpEntry>> {
    let Some(gspec) = q.group.as_ref() else {
        return Ok(None);
    };
    let Some(flat) = flatten(q) else {
        return Ok(None);
    };
    let mut best: Option<DpEntry> = None;
    for name in catalog.matview_names() {
        let Some(meta) = catalog.matview(&name) else {
            continue;
        };
        if meta.is_stale(catalog) {
            continue;
        }
        for theta in bijections(&meta.def.tables, &flat.tables) {
            let Some(plan) = match_view(&meta, &theta, &flat, gspec, &q.project) else {
                continue;
            };
            stats.plans_built += 1;
            gov.charge_plans(1)?;
            let Ok(props) = est.cost_plan(&plan) else {
                continue; // uncostable candidate (e.g. missing stats): skip
            };
            if best.as_ref().is_none_or(|b| props.cost < b.props.cost) {
                best = Some(DpEntry { plan, props });
            }
        }
    }
    Ok(best)
}

/// All bijections θ assigning each view-local relation a distinct block
/// relation over the same table name. `theta[i]` is the index into the
/// block's relation list for view-local relation `i`. Self-joins make
/// this a backtracking search; for the common no-repeated-table case at
/// most one assignment survives.
fn bijections(view_tables: &[String], block_tables: &[String]) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if view_tables.len() != block_tables.len() {
        return out;
    }
    let mut used = vec![false; block_tables.len()];
    let mut current = Vec::with_capacity(view_tables.len());
    assign(view_tables, block_tables, &mut used, &mut current, &mut out);
    out
}

fn assign(
    view_tables: &[String],
    block_tables: &[String],
    used: &mut [bool],
    current: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    let i = current.len();
    if i == view_tables.len() {
        out.push(current.clone());
        return;
    }
    for j in 0..block_tables.len() {
        if !used[j] && view_tables[i].eq_ignore_ascii_case(&block_tables[j]) {
            used[j] = true;
            current.push(j);
            assign(view_tables, block_tables, used, current, out);
            current.pop();
            used[j] = false;
        }
    }
}

/// Attempt to answer the block from `meta`'s extent under the relation
/// bijection `theta`; returns the compensated access path on success.
fn match_view(
    meta: &MatViewMeta,
    theta: &[usize],
    flat: &FlatBlock,
    gspec: &GroupBySpec,
    project: &[Col],
) -> Option<Plan> {
    let def = &meta.def;
    // Rewrite view-local columns into the block's relation frame.
    let map = |c: Col| match c {
        Col::Base(b) => Col::base(flat.rels[theta[b.rel.idx()]], b.col as usize),
        other => other,
    };
    let mapped_preds: Vec<Predicate> = def.preds.iter().map(|p| p.map_cols(&map)).collect();
    let mapped_groups: Vec<Col> = def.group_cols.iter().map(|&c| map(c)).collect();
    let mapped_aggs: Vec<AggSpec> = def
        .aggs
        .iter()
        .map(|a| AggSpec {
            func: a.func,
            arg: a.arg.as_ref().map(|e| e.map_cols(&map)),
        })
        .collect();
    let group_set: BTreeSet<Col> = mapped_groups.iter().copied().collect();

    // Every view predicate must be enforced by the block (the extent is
    // missing rows otherwise); every residual block predicate must be
    // evaluable over the view's grouping columns so it can compensate
    // as an extent-scan filter.
    let mut covered = vec![false; mapped_preds.len()];
    let mut residue: Vec<Predicate> = Vec::new();
    for bp in &flat.preds {
        if let Some(k) = mapped_preds.iter().position(|vp| preds_equal(bp, vp)) {
            covered[k] = true;
        } else if bp.cols_used().iter().all(|c| group_set.contains(c)) {
            residue.push(bp.clone());
        } else {
            return None;
        }
    }
    if !covered.iter().all(|&c| c) {
        return None;
    }

    // The block may group no finer than the view.
    if !gspec.group_cols.iter().all(|c| group_set.contains(c)) {
        return None;
    }
    let exact = group_set.iter().all(|c| gspec.group_cols.contains(c));

    // Every block aggregate must be one of the view's aggregates.
    let agg_map: Vec<usize> = gspec
        .aggs
        .iter()
        .map(|a| mapped_aggs.iter().position(|va| va == a))
        .collect::<Option<_>>()?;

    let covers = flat.rels.clone();
    if exact {
        // Finalized columns answer the block directly; residual
        // predicates and the HAVING clause become extent-scan filters.
        let mut cols: Vec<usize> = (0..mapped_groups.len()).collect();
        let mut outputs = mapped_groups.clone();
        for (i, &j) in agg_map.iter().enumerate() {
            cols.push(meta.layout.aggs[j].finalized);
            outputs.push(Col::agg(gspec.owner, i));
        }
        let out_set: BTreeSet<Col> = outputs.iter().copied().collect();
        if !project.iter().all(|c| out_set.contains(c)) {
            return None;
        }
        let mut filters = residue;
        filters.extend(gspec.having.iter().cloned());
        Some(Plan::extent_scan(
            &def.name,
            &meta.extent,
            covers,
            cols,
            outputs,
            filters,
            project.to_vec(),
        ))
    } else {
        // Strictly coarser grouping: scan the stored partial states and
        // coalesce them with a compensating group-by (Figure 2). Every
        // matched aggregate must store partial state.
        if !agg_map
            .iter()
            .all(|&j| stores_partial_state(def.aggs[j].func))
        {
            return None;
        }
        let mut cols: Vec<usize> = (0..mapped_groups.len()).collect();
        let mut outputs = mapped_groups.clone();
        for (i, &j) in agg_map.iter().enumerate() {
            let aref = gspec.agg_ref(i);
            for (k, &phys) in meta.layout.aggs[j].components.iter().enumerate() {
                cols.push(phys);
                outputs.push(Col::part(aref, k));
            }
        }
        // The compensating group-by consumes the block's grouping
        // columns and the partial states; residual predicates filter
        // the extent rows first (they may reference view grouping
        // columns the block no longer groups by).
        let mut scan_project: Vec<Col> = gspec.group_cols.clone();
        scan_project.extend(outputs.iter().copied().filter(|c| c.is_part()));
        let agg_set: BTreeSet<Col> = (0..gspec.aggs.len())
            .map(|i| Col::agg(gspec.owner, i))
            .collect();
        if !project
            .iter()
            .all(|c| gspec.group_cols.contains(c) || agg_set.contains(c))
        {
            return None;
        }
        let extent = Plan::extent_scan(
            &def.name,
            &meta.extent,
            covers,
            cols,
            outputs,
            residue,
            scan_project,
        );
        Some(Plan::group_by(extent, gspec.clone(), project.to_vec()))
    }
}

/// Structural predicate equality, tolerating a flipped comparison
/// (`a < b` matches `b > a`).
fn preds_equal(a: &Predicate, b: &Predicate) -> bool {
    a == b || (a.op == b.op.flipped() && a.left == b.right && a.right == b.left)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::{AggFunc, CmpOp, Expr, Value};

    #[test]
    fn bijections_respect_table_names() {
        let view = vec!["emp".to_string(), "dept".to_string()];
        let block = vec!["dept".to_string(), "emp".to_string()];
        assert_eq!(bijections(&view, &block), vec![vec![1, 0]]);
        // Arity mismatch: no assignment.
        assert!(bijections(&view, &block[..1]).is_empty());
    }

    #[test]
    fn self_join_yields_both_assignments() {
        let view = vec!["emp".to_string(), "emp".to_string()];
        let block = view.clone();
        let all = bijections(&view, &block);
        assert_eq!(all.len(), 2);
        assert!(all.contains(&vec![0, 1]) && all.contains(&vec![1, 0]));
    }

    #[test]
    fn flipped_predicates_compare_equal() {
        let lt = Predicate::new(
            Expr::col(Col::base(RelId(0), 1)),
            CmpOp::Lt,
            Expr::val(Value::Int(5)),
        );
        let gt = Predicate::new(
            Expr::val(Value::Int(5)),
            CmpOp::Gt,
            Expr::col(Col::base(RelId(0), 1)),
        );
        assert!(preds_equal(&lt, &gt));
        assert!(preds_equal(&lt, &lt));
        let ne = Predicate::new(
            Expr::col(Col::base(RelId(0), 1)),
            CmpOp::Le,
            Expr::val(Value::Int(5)),
        );
        assert!(!preds_equal(&lt, &ne));
    }

    #[test]
    fn mapped_agg_equality_uses_func_and_arg() {
        let a = AggSpec::new(AggFunc::Sum, Expr::col(Col::base(RelId(2), 1)));
        let b = AggSpec::new(AggFunc::Sum, Expr::col(Col::base(RelId(2), 1)));
        let c = AggSpec::new(AggFunc::Avg, Expr::col(Col::base(RelId(2), 1)));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
