//! Operator trees ("execution plans").
//!
//! The paper views queries algebraically "in terms of operators. An
//! operator tree reflects the partial order on evaluation of operators in
//! a query" (Section 2). Two operators matter: **join** (with a list of
//! join predicates) and **group-by** (with grouping columns, aggregating
//! columns, aggregate functions and HAVING predicates). Projection is
//! not an explicit operator: "each join as well as each group-by operator
//! has an associated list of projection columns" — here the `project`
//! field of every node, which doubles as the node's output layout.
//!
//! [`Plan::validate`] implements the paper's *legal operator tree*
//! notion: every column a node consumes must be produced below it, and a
//! predicate over aggregated columns may only appear at or above the
//! group-by that computes the aggregate.

use aggview_common::{
    AggRef, AggSpec, AggViewError, Col, ColRef, DataType, Predicate, RelId, Result, ViewId,
};
use aggview_storage::Catalog;
use std::collections::BTreeSet;
use std::fmt;

/// Physical join algorithm annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinAlgo {
    /// Let the executor pick the cheapest given actual input sizes.
    Auto,
    /// Tuple-at-a-time nested loops (educational baseline; never chosen
    /// by the cost-based optimizer when an alternative applies).
    NestedLoop,
    /// Block nested loops: outer in memory-sized chunks, inner rescanned
    /// per chunk.
    BlockNested,
    /// Grace/hybrid hash join on equality predicates.
    Hash,
    /// Sort-merge join on equality predicates.
    SortMerge,
}

impl fmt::Display for JoinAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinAlgo::Auto => "auto",
            JoinAlgo::NestedLoop => "nl",
            JoinAlgo::BlockNested => "bnl",
            JoinAlgo::Hash => "hash",
            JoinAlgo::SortMerge => "merge",
        };
        f.write_str(s)
    }
}

/// Physical aggregation algorithm annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggAlgo {
    /// Let the executor pick.
    Auto,
    /// Hash aggregation (partitioned when the table exceeds memory).
    Hash,
    /// Sort-based aggregation.
    Sort,
}

impl fmt::Display for AggAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggAlgo::Auto => "auto",
            AggAlgo::Hash => "hash",
            AggAlgo::Sort => "sort",
        };
        f.write_str(s)
    }
}

/// A group-by operator's annotations (paper Section 2): grouping
/// columns, aggregate specifications, and HAVING predicates.
///
/// `owner` gives the operator its identity in [`AggRef`] space: the
/// `idx`-th entry of `aggs` produces column `Col::Agg(AggRef { owner,
/// idx })`. Transformations that *move* the operator (pull-up) keep
/// `owner` stable, so references to its outputs survive the move.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupBySpec {
    /// Which logical group-by this is (view `Qi` or the top `G0`).
    pub owner: ViewId,
    /// Grouping columns.
    pub group_cols: Vec<Col>,
    /// Aggregate computations, in `AggRef::idx` order.
    pub aggs: Vec<AggSpec>,
    /// HAVING predicates, evaluated per group (may reference grouping
    /// columns and this operator's aggregate outputs).
    pub having: Vec<Predicate>,
}

impl GroupBySpec {
    /// The aggregate output columns this operator produces.
    pub fn agg_cols(&self) -> Vec<Col> {
        (0..self.aggs.len())
            .map(|i| Col::agg(self.owner, i))
            .collect()
    }

    /// Reference to the `i`-th aggregate output.
    pub fn agg_ref(&self, i: usize) -> AggRef {
        AggRef::new(self.owner, i)
    }
}

/// A *partial* group-by added by simple coalescing grouping (paper
/// Section 4.2): computes decomposed aggregate states that an upper
/// group-by with the same `AggRef` identities later coalesces.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialGroupSpec {
    /// Grouping columns (must include the original grouping columns
    /// restricted to this side plus any join columns that flow upward).
    pub group_cols: Vec<Col>,
    /// The logical aggregates being decomposed, with their identities.
    pub aggs: Vec<(AggRef, AggSpec)>,
}

impl PartialGroupSpec {
    /// The partial-state component columns produced for aggregate `i`.
    pub fn part_cols(&self, i: usize) -> Vec<Col> {
        let (aref, spec) = &self.aggs[i];
        (0..spec.func.partial_arity())
            .map(|k| Col::part(*aref, k))
            .collect()
    }

    /// All partial-state columns produced, in aggregate order.
    pub fn all_part_cols(&self) -> Vec<Col> {
        (0..self.aggs.len())
            .flat_map(|i| self.part_cols(i))
            .collect()
    }
}

/// An *eager* partial aggregate placed below a join input (the paper's
/// push-down direction, Yan–Larson eager aggregation): folds one join
/// input down to its groups **before** the join materializes anything,
/// so the join sees |group × joinkey| rows instead of |R|.
///
/// Structurally it produces the same partial-state columns as
/// [`PartialGroupSpec`], plus (when `count` is set) a per-group row
/// count the merge above the join uses as the duplicate factor: each
/// duplicate-sensitive aggregate kept on the *partner* side must be
/// scaled by how many pushed-side rows its join match stands for.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialAggSpec {
    /// Pushed grouping columns: the final grouping columns this side
    /// produces, extended with the join keys that flow upward
    /// (Definition 1: pushed keys ⊇ pull-up keys).
    pub group_cols: Vec<Col>,
    /// The final aggregates whose *local* phase is computed here, with
    /// their identities in the merge group-by above.
    pub aggs: Vec<(AggRef, AggSpec)>,
    /// Identity of the per-group COUNT(*) column emitted as the
    /// duplicate factor; `None` when every kept partner-side aggregate
    /// is duplicate-insensitive (MIN/MAX) and no compensation is
    /// needed.
    pub count: Option<AggRef>,
}

impl PartialAggSpec {
    /// The partial-state component columns produced for aggregate `i`.
    pub fn part_cols(&self, i: usize) -> Vec<Col> {
        let (aref, spec) = &self.aggs[i];
        (0..spec.func.partial_arity())
            .map(|k| Col::part(*aref, k))
            .collect()
    }

    /// The duplicate-factor count column, when one is emitted.
    pub fn count_col(&self) -> Option<Col> {
        self.count.map(|aref| Col::part(aref, 0))
    }

    /// All partial-state columns produced, in aggregate order, with the
    /// count column (if any) last.
    pub fn all_part_cols(&self) -> Vec<Col> {
        let mut cols: Vec<Col> = (0..self.aggs.len())
            .flat_map(|i| self.part_cols(i))
            .collect();
        cols.extend(self.count_col());
        cols
    }
}

/// An execution plan / operator tree.
///
/// Every node carries its projection list, which is also its output
/// layout: executing a node yields tuples whose `i`-th value corresponds
/// to `project[i]`.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan a base relation instance, applying pushed-down selection
    /// predicates, producing `project`.
    Scan {
        /// The relation instance this scan produces.
        rel: RelId,
        /// Base table name (resolved through the catalog).
        table: String,
        /// Local selection predicates (reference only `rel`).
        filters: Vec<Predicate>,
        /// Output columns (base columns of `rel`).
        project: Vec<Col>,
    },
    /// Join two subtrees on a conjunction of predicates.
    Join {
        algo: JoinAlgo,
        left: Box<Plan>,
        right: Box<Plan>,
        /// Join predicates (columns from both sides; never aggregate
        /// outputs that are not yet computed below).
        preds: Vec<Predicate>,
        /// Output columns (subset of the union of child outputs).
        project: Vec<Col>,
    },
    /// Full group-by: produces one tuple per group surviving HAVING.
    GroupBy {
        algo: AggAlgo,
        input: Box<Plan>,
        spec: GroupBySpec,
        /// Output columns (grouping columns and aggregate outputs).
        project: Vec<Col>,
    },
    /// Partial group-by (simple coalescing): produces partial aggregate
    /// states, no HAVING (predicates over aggregates must wait for the
    /// coalescing operator).
    PartialGroupBy {
        algo: AggAlgo,
        input: Box<Plan>,
        spec: PartialGroupSpec,
        /// Output columns (grouping columns and partial-state columns).
        project: Vec<Col>,
    },
    /// Eager partial aggregation below a join (push-down): produces
    /// pushed group keys, partial aggregate states, and (optionally)
    /// the per-group duplicate-factor count. No HAVING — predicates
    /// over aggregates wait for the merge group-by above the join.
    PartialAggregate {
        algo: AggAlgo,
        input: Box<Plan>,
        spec: PartialAggSpec,
        /// Output columns (pushed grouping columns, partial-state
        /// columns, and the count column when present).
        project: Vec<Col>,
    },
    /// Scan a materialized aggregate-view extent in place of the view's
    /// body (scans + joins + group-by over `covers`). Leaf node: the
    /// extent table stores one row per group, with physical column
    /// `cols[i]` exposed under the logical identity `outputs[i]` — a
    /// `Col::Base` for a group column, `Col::Agg` for a finalized
    /// aggregate, or `Col::Part` for a stored partial-state component
    /// (consumed by a compensating coalescing group-by above).
    ExtentScan {
        /// Materialized view name (registered in the catalog).
        view: String,
        /// Extent table name (resolved through the catalog).
        table: String,
        /// Base relation instances of the query this extent stands for.
        covers: Vec<RelId>,
        /// Physical column positions read from the extent table.
        cols: Vec<usize>,
        /// Logical identity of each read column, parallel to `cols`.
        outputs: Vec<Col>,
        /// Compensating predicates over `outputs` (residual selections
        /// and, for exact-grouping matches, HAVING compensation).
        filters: Vec<Predicate>,
        /// Output columns (subset of `outputs`).
        project: Vec<Col>,
    },
    /// A subtree the dataflow pass proved empty (a contradictory
    /// predicate set). Leaf node: produces zero rows of the recorded
    /// layout without touching storage. The covered relation instances
    /// are kept so relation-set bookkeeping (join disjointness,
    /// degraded-shape checks) still holds after the rewrite.
    EmptyScan {
        /// Base relation instances the pruned subtree covered.
        covers: Vec<RelId>,
        /// Output columns.
        project: Vec<Col>,
        /// Static type of each output column, parallel to `project`.
        types: Vec<DataType>,
        /// The contradiction that proved the subtree empty.
        reason: String,
    },
}

impl Plan {
    /// Scan with explicit projection.
    pub fn scan(
        rel: RelId,
        table: impl Into<String>,
        filters: Vec<Predicate>,
        project: Vec<Col>,
    ) -> Plan {
        Plan::Scan {
            rel,
            table: table.into(),
            filters,
            project,
        }
    }

    /// Join with explicit projection.
    pub fn join(left: Plan, right: Plan, preds: Vec<Predicate>, project: Vec<Col>) -> Plan {
        Plan::Join {
            algo: JoinAlgo::Auto,
            left: Box::new(left),
            right: Box::new(right),
            preds,
            project,
        }
    }

    /// Join projecting everything both children produce.
    pub fn join_all(left: Plan, right: Plan, preds: Vec<Predicate>) -> Plan {
        let mut project = left.output_cols().to_vec();
        project.extend_from_slice(right.output_cols());
        Plan::join(left, right, preds, project)
    }

    /// Group-by projecting all grouping columns and aggregate outputs.
    pub fn group_by_all(input: Plan, spec: GroupBySpec) -> Plan {
        let mut project = spec.group_cols.clone();
        project.extend(spec.agg_cols());
        Plan::GroupBy {
            algo: AggAlgo::Auto,
            input: Box::new(input),
            spec,
            project,
        }
    }

    /// Group-by with explicit projection.
    pub fn group_by(input: Plan, spec: GroupBySpec, project: Vec<Col>) -> Plan {
        Plan::GroupBy {
            algo: AggAlgo::Auto,
            input: Box::new(input),
            spec,
            project,
        }
    }

    /// Partial group-by projecting all grouping and partial columns.
    pub fn partial_group_by_all(input: Plan, spec: PartialGroupSpec) -> Plan {
        let mut project = spec.group_cols.clone();
        project.extend(spec.all_part_cols());
        Plan::PartialGroupBy {
            algo: AggAlgo::Auto,
            input: Box::new(input),
            spec,
            project,
        }
    }

    /// Eager partial aggregate projecting all pushed keys, partial
    /// columns, and the count column (if any).
    pub fn partial_aggregate_all(input: Plan, spec: PartialAggSpec) -> Plan {
        let mut project = spec.group_cols.clone();
        project.extend(spec.all_part_cols());
        Plan::PartialAggregate {
            algo: AggAlgo::Auto,
            input: Box::new(input),
            spec,
            project,
        }
    }

    /// Scan of a materialized-view extent with explicit column mapping.
    #[allow(clippy::too_many_arguments)]
    pub fn extent_scan(
        view: impl Into<String>,
        table: impl Into<String>,
        covers: Vec<RelId>,
        cols: Vec<usize>,
        outputs: Vec<Col>,
        filters: Vec<Predicate>,
        project: Vec<Col>,
    ) -> Plan {
        Plan::ExtentScan {
            view: view.into(),
            table: table.into(),
            covers,
            cols,
            outputs,
            filters,
            project,
        }
    }

    /// A provably-empty subtree replacement with an explicit layout.
    pub fn empty_scan(
        covers: Vec<RelId>,
        project: Vec<Col>,
        types: Vec<DataType>,
        reason: impl Into<String>,
    ) -> Plan {
        Plan::EmptyScan {
            covers,
            project,
            types,
            reason: reason.into(),
        }
    }

    /// This node's output layout.
    pub fn output_cols(&self) -> &[Col] {
        match self {
            Plan::Scan { project, .. }
            | Plan::Join { project, .. }
            | Plan::GroupBy { project, .. }
            | Plan::PartialGroupBy { project, .. }
            | Plan::PartialAggregate { project, .. }
            | Plan::ExtentScan { project, .. }
            | Plan::EmptyScan { project, .. } => project,
        }
    }

    /// Replace this node's projection list (validation will catch
    /// projections of unavailable columns).
    pub fn with_project(mut self, new_project: Vec<Col>) -> Plan {
        match &mut self {
            Plan::Scan { project, .. }
            | Plan::Join { project, .. }
            | Plan::GroupBy { project, .. }
            | Plan::PartialGroupBy { project, .. }
            | Plan::PartialAggregate { project, .. }
            | Plan::ExtentScan { project, .. } => *project = new_project,
            Plan::EmptyScan { project, types, .. } => {
                // Keep the recorded types parallel to the projection.
                // Unknown columns get a placeholder; validation rejects
                // them before anything downstream reads the type.
                let old: Vec<(Col, DataType)> =
                    project.iter().copied().zip(types.iter().copied()).collect();
                *types = new_project
                    .iter()
                    .map(|c| {
                        old.iter()
                            .find(|(o, _)| o == c)
                            .map(|&(_, t)| t)
                            .unwrap_or(DataType::Int)
                    })
                    .collect();
                *project = new_project;
            }
        }
        self
    }

    /// Bitset of base relation instances covered by this subtree.
    pub fn rel_set(&self) -> u64 {
        match self {
            Plan::Scan { rel, .. } => rel.bit(),
            Plan::Join { left, right, .. } => left.rel_set() | right.rel_set(),
            Plan::GroupBy { input, .. }
            | Plan::PartialGroupBy { input, .. }
            | Plan::PartialAggregate { input, .. } => input.rel_set(),
            Plan::ExtentScan { covers, .. } | Plan::EmptyScan { covers, .. } => {
                covers.iter().fold(0, |s, r| s | r.bit())
            }
        }
    }

    /// All base relation instances covered, ascending.
    pub fn rels(&self) -> Vec<RelId> {
        let set = self.rel_set();
        (0..64).filter(|i| set & (1 << i) != 0).map(RelId).collect()
    }

    /// Number of group-by operators (full or partial) in the tree.
    pub fn group_by_count(&self) -> usize {
        match self {
            Plan::Scan { .. } | Plan::ExtentScan { .. } | Plan::EmptyScan { .. } => 0,
            Plan::Join { left, right, .. } => left.group_by_count() + right.group_by_count(),
            Plan::GroupBy { input, .. }
            | Plan::PartialGroupBy { input, .. }
            | Plan::PartialAggregate { input, .. } => 1 + input.group_by_count(),
        }
    }

    /// Number of join operators in the tree.
    pub fn join_count(&self) -> usize {
        match self {
            Plan::Scan { .. } | Plan::ExtentScan { .. } | Plan::EmptyScan { .. } => 0,
            Plan::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
            Plan::GroupBy { input, .. }
            | Plan::PartialGroupBy { input, .. }
            | Plan::PartialAggregate { input, .. } => input.join_count(),
        }
    }

    /// Check that this is a *legal operator tree* (paper Section 2):
    /// every consumed column is produced below, scan filters are local,
    /// join predicates don't reference unavailable aggregates, group-by
    /// HAVING only sees group keys and own aggregates.
    pub fn validate(&self, catalog: &Catalog, rel_tables: &[String]) -> Result<()> {
        self.validate_inner(catalog, rel_tables)?;
        Ok(())
    }

    /// Validation worker: returns the set of columns this node outputs.
    fn validate_inner(&self, catalog: &Catalog, rel_tables: &[String]) -> Result<BTreeSet<Col>> {
        match self {
            Plan::Scan {
                rel,
                table,
                filters,
                project,
            } => {
                let t = catalog.get(table)?;
                let declared = rel_tables.get(rel.idx()).ok_or_else(|| {
                    AggViewError::Plan(format!("scan of undeclared relation {rel}"))
                })?;
                if !declared.eq_ignore_ascii_case(table) {
                    return Err(AggViewError::Plan(format!(
                        "scan of {rel} names table `{table}` but query binds it to `{declared}`"
                    )));
                }
                let arity = t.schema().len();
                let avail: BTreeSet<Col> = (0..arity).map(|c| Col::base(*rel, c)).collect();
                for p in filters {
                    let used = p.cols_used();
                    if !used.iter().all(|c| avail.contains(c)) {
                        return Err(AggViewError::Plan(format!(
                            "scan filter `{p}` references columns outside {rel}"
                        )));
                    }
                }
                let out: BTreeSet<Col> = project.iter().copied().collect();
                if !out.iter().all(|c| avail.contains(c)) {
                    return Err(AggViewError::Plan(format!(
                        "scan of {rel} projects columns it does not produce"
                    )));
                }
                Ok(out)
            }
            Plan::Join {
                left,
                right,
                preds,
                project,
                ..
            } => {
                let l = left.validate_inner(catalog, rel_tables)?;
                let r = right.validate_inner(catalog, rel_tables)?;
                if left.rel_set() & right.rel_set() != 0 {
                    return Err(AggViewError::Plan(
                        "join children overlap in base relations".into(),
                    ));
                }
                let mut avail = l;
                avail.extend(r.iter().copied());
                for p in preds {
                    for c in p.cols_used() {
                        if !avail.contains(&c) {
                            return Err(AggViewError::Plan(format!(
                                "join predicate `{p}` references unavailable column {c}"
                            )));
                        }
                    }
                }
                for c in project {
                    if !avail.contains(c) {
                        return Err(AggViewError::Plan(format!(
                            "join projects unavailable column {c}"
                        )));
                    }
                }
                Ok(project.iter().copied().collect())
            }
            Plan::GroupBy {
                input,
                spec,
                project,
                ..
            } => {
                let child = input.validate_inner(catalog, rel_tables)?;
                for g in &spec.group_cols {
                    if !child.contains(g) {
                        return Err(AggViewError::Plan(format!(
                            "group-by {} groups on unavailable column {g}",
                            spec.owner
                        )));
                    }
                }
                for (i, a) in spec.aggs.iter().enumerate() {
                    let aref = spec.agg_ref(i);
                    let partial_first = Col::part(aref, 0);
                    if child.contains(&partial_first) {
                        // Coalescing input: all components must be present.
                        for k in 0..a.func.partial_arity() {
                            if !child.contains(&Col::part(aref, k)) {
                                return Err(AggViewError::Plan(format!(
                                    "group-by {} misses partial component {k} of {aref}",
                                    spec.owner
                                )));
                            }
                        }
                    } else {
                        for c in a.cols_used() {
                            if !child.contains(&c) {
                                return Err(AggViewError::Plan(format!(
                                    "aggregate `{a}` of {} reads unavailable column {c}",
                                    spec.owner
                                )));
                            }
                        }
                    }
                }
                let mut avail: BTreeSet<Col> = spec.group_cols.iter().copied().collect();
                avail.extend(spec.agg_cols());
                for h in &spec.having {
                    for c in h.cols_used() {
                        if !avail.contains(&c) {
                            return Err(AggViewError::Plan(format!(
                                "HAVING `{h}` of {} references {c}, which is neither a \
                                 grouping column nor an aggregate of this operator",
                                spec.owner
                            )));
                        }
                    }
                }
                for c in project {
                    if !avail.contains(c) {
                        return Err(AggViewError::Plan(format!(
                            "group-by {} projects unavailable column {c}",
                            spec.owner
                        )));
                    }
                }
                Ok(project.iter().copied().collect())
            }
            Plan::PartialGroupBy {
                input,
                spec,
                project,
                ..
            } => {
                let child = input.validate_inner(catalog, rel_tables)?;
                for g in &spec.group_cols {
                    if !child.contains(g) {
                        return Err(AggViewError::Plan(format!(
                            "partial group-by groups on unavailable column {g}"
                        )));
                    }
                }
                for (_, a) in &spec.aggs {
                    if !a.func.is_decomposable() {
                        return Err(AggViewError::Plan(format!(
                            "partial group-by over non-decomposable aggregate `{a}`"
                        )));
                    }
                    for c in a.cols_used() {
                        if !child.contains(&c) {
                            return Err(AggViewError::Plan(format!(
                                "partial aggregate `{a}` reads unavailable column {c}"
                            )));
                        }
                    }
                }
                let mut avail: BTreeSet<Col> = spec.group_cols.iter().copied().collect();
                avail.extend(spec.all_part_cols());
                for c in project {
                    if !avail.contains(c) {
                        return Err(AggViewError::Plan(format!(
                            "partial group-by projects unavailable column {c}"
                        )));
                    }
                }
                Ok(project.iter().copied().collect())
            }
            Plan::PartialAggregate {
                input,
                spec,
                project,
                ..
            } => {
                let child = input.validate_inner(catalog, rel_tables)?;
                if spec.group_cols.is_empty() {
                    return Err(AggViewError::Plan(
                        "eager partial aggregate with no pushed grouping columns".into(),
                    ));
                }
                for g in &spec.group_cols {
                    if !child.contains(g) {
                        return Err(AggViewError::Plan(format!(
                            "eager partial aggregate groups on unavailable column {g}"
                        )));
                    }
                }
                for (_, a) in &spec.aggs {
                    if !a.func.is_decomposable() {
                        return Err(AggViewError::Plan(format!(
                            "eager partial aggregate over non-decomposable aggregate `{a}`"
                        )));
                    }
                    for c in a.cols_used() {
                        if !child.contains(&c) {
                            return Err(AggViewError::Plan(format!(
                                "eager partial aggregate `{a}` reads unavailable column {c}"
                            )));
                        }
                    }
                }
                let mut avail: BTreeSet<Col> = spec.group_cols.iter().copied().collect();
                avail.extend(spec.all_part_cols());
                for c in project {
                    if !avail.contains(c) {
                        return Err(AggViewError::Plan(format!(
                            "eager partial aggregate projects unavailable column {c}"
                        )));
                    }
                }
                Ok(project.iter().copied().collect())
            }
            Plan::ExtentScan {
                view,
                table,
                covers,
                cols,
                outputs,
                filters,
                project,
            } => {
                let t = catalog.get(table)?;
                if covers.is_empty() {
                    return Err(AggViewError::Plan(format!(
                        "extent scan of `{view}` covers no relations"
                    )));
                }
                if cols.len() != outputs.len() {
                    return Err(AggViewError::Plan(format!(
                        "extent scan of `{view}` maps {} physical columns to {} outputs",
                        cols.len(),
                        outputs.len()
                    )));
                }
                let arity = t.schema().len();
                if let Some(&c) = cols.iter().find(|&&c| c >= arity) {
                    return Err(AggViewError::Plan(format!(
                        "extent scan of `{view}` reads column {c} of {arity}-column extent"
                    )));
                }
                let avail: BTreeSet<Col> = outputs.iter().copied().collect();
                for p in filters {
                    if !p.cols_used().iter().all(|c| avail.contains(c)) {
                        return Err(AggViewError::Plan(format!(
                            "extent-scan filter `{p}` references columns the extent \
                             of `{view}` does not expose"
                        )));
                    }
                }
                let out: BTreeSet<Col> = project.iter().copied().collect();
                if !out.iter().all(|c| avail.contains(c)) {
                    return Err(AggViewError::Plan(format!(
                        "extent scan of `{view}` projects columns it does not produce"
                    )));
                }
                Ok(out)
            }
            Plan::EmptyScan {
                covers,
                project,
                types,
                ..
            } => {
                if covers.is_empty() {
                    return Err(AggViewError::Plan("empty scan covers no relations".into()));
                }
                if let Some(r) = covers.iter().find(|r| r.idx() >= rel_tables.len()) {
                    return Err(AggViewError::Plan(format!(
                        "empty scan covers undeclared relation {r}"
                    )));
                }
                if types.len() != project.len() {
                    return Err(AggViewError::Plan(format!(
                        "empty scan records {} types for {} output columns",
                        types.len(),
                        project.len()
                    )));
                }
                Ok(project.iter().copied().collect())
            }
        }
    }

    /// Multi-line indented rendering for debugging and EXPLAIN-style
    /// output.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0);
        s
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            Plan::Scan {
                rel,
                table,
                filters,
                ..
            } => {
                let _ = write!(out, "{pad}Scan {table} as {rel}");
                if !filters.is_empty() {
                    let fs: Vec<String> = filters.iter().map(|p| p.to_string()).collect();
                    let _ = write!(out, " filter [{}]", fs.join(" AND "));
                }
                let _ = writeln!(out);
            }
            Plan::Join {
                algo,
                left,
                right,
                preds,
                ..
            } => {
                let ps: Vec<String> = preds.iter().map(|p| p.to_string()).collect();
                let _ = writeln!(out, "{pad}Join[{algo}] on [{}]", ps.join(" AND "));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::GroupBy {
                algo, input, spec, ..
            } => {
                let gs: Vec<String> = spec.group_cols.iter().map(|c| c.to_string()).collect();
                let aggs: Vec<String> = spec.aggs.iter().map(|a| a.to_string()).collect();
                let _ = write!(
                    out,
                    "{pad}GroupBy[{algo}] {} by [{}] agg [{}]",
                    spec.owner,
                    gs.join(", "),
                    aggs.join(", ")
                );
                if !spec.having.is_empty() {
                    let hs: Vec<String> = spec.having.iter().map(|p| p.to_string()).collect();
                    let _ = write!(out, " having [{}]", hs.join(" AND "));
                }
                let _ = writeln!(out);
                input.explain_into(out, depth + 1);
            }
            Plan::PartialGroupBy {
                algo, input, spec, ..
            } => {
                let gs: Vec<String> = spec.group_cols.iter().map(|c| c.to_string()).collect();
                let aggs: Vec<String> = spec
                    .aggs
                    .iter()
                    .map(|(r, a)| format!("{a} as {r}"))
                    .collect();
                let _ = writeln!(
                    out,
                    "{pad}PartialGroupBy[{algo}] by [{}] agg [{}]",
                    gs.join(", "),
                    aggs.join(", ")
                );
                input.explain_into(out, depth + 1);
            }
            Plan::PartialAggregate {
                algo, input, spec, ..
            } => {
                let gs: Vec<String> = spec.group_cols.iter().map(|c| c.to_string()).collect();
                let aggs: Vec<String> = spec
                    .aggs
                    .iter()
                    .enumerate()
                    .map(|(i, (r, a))| {
                        let parts: Vec<String> =
                            spec.part_cols(i).iter().map(|c| c.to_string()).collect();
                        format!("{a} as {r} -> [{}]", parts.join(", "))
                    })
                    .collect();
                let _ = write!(
                    out,
                    "{pad}PartialAggregate[{algo}] keys [{}] agg [{}]",
                    gs.join(", "),
                    aggs.join(", ")
                );
                if let Some(c) = spec.count_col() {
                    let _ = write!(out, " dup-count {c}");
                }
                let _ = writeln!(out);
                input.explain_into(out, depth + 1);
            }
            Plan::ExtentScan {
                view,
                table,
                covers,
                filters,
                ..
            } => {
                let rs: Vec<String> = covers.iter().map(|r| r.to_string()).collect();
                let _ = write!(
                    out,
                    "{pad}ExtentScan {table} (matview {view}) covers [{}]",
                    rs.join(", ")
                );
                if !filters.is_empty() {
                    let fs: Vec<String> = filters.iter().map(|p| p.to_string()).collect();
                    let _ = write!(out, " filter [{}]", fs.join(" AND "));
                }
                let _ = writeln!(out);
            }
            Plan::EmptyScan { covers, reason, .. } => {
                let rs: Vec<String> = covers.iter().map(|r| r.to_string()).collect();
                let _ = writeln!(out, "{pad}EmptyScan covers [{}] ({reason})", rs.join(", "));
            }
        }
    }
}

/// Columns of a base table as `Col`s, for plan construction.
pub fn all_cols(rel: RelId, arity: usize) -> Vec<Col> {
    (0..arity).map(|c| Col::base(rel, c)).collect()
}

/// The base column positions (within their table schemas) of a set of
/// grouping columns restricted to relation `rel`.
pub fn positions_of(cols: &[Col], rel: RelId) -> Vec<usize> {
    cols.iter()
        .filter_map(|c| c.as_base())
        .filter(|c: &ColRef| c.rel == rel)
        .map(|c| c.col as usize)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::{AggFunc, CmpOp, DataType, Expr, Schema, Value};
    use aggview_storage::Table;

    /// emp(eno, name, dno, sal, age), dept(dno, dname, budget, loc)
    fn setup() -> (Catalog, Vec<String>) {
        let catalog = Catalog::new();
        catalog
            .add(
                Table::builder(
                    "emp",
                    Schema::of(&[
                        ("eno", DataType::Int),
                        ("name", DataType::Str),
                        ("dno", DataType::Int),
                        ("sal", DataType::Float),
                        ("age", DataType::Int),
                    ]),
                )
                .primary_key(&["eno"])
                .unwrap()
                .build()
                .unwrap(),
            )
            .unwrap();
        catalog
            .add(
                Table::builder(
                    "dept",
                    Schema::of(&[
                        ("dno", DataType::Int),
                        ("dname", DataType::Str),
                        ("budget", DataType::Float),
                        ("loc", DataType::Str),
                    ]),
                )
                .primary_key(&["dno"])
                .unwrap()
                .build()
                .unwrap(),
            )
            .unwrap();
        (catalog, vec!["emp".into(), "dept".into()])
    }

    fn emp_scan() -> Plan {
        Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5))
    }

    fn dept_scan() -> Plan {
        Plan::scan(RelId(1), "dept", vec![], all_cols(RelId(1), 4))
    }

    #[test]
    fn legal_spj_tree_validates() {
        let (cat, rels) = setup();
        let join = Plan::join_all(
            emp_scan(),
            dept_scan(),
            vec![Predicate::eq_cols(
                Col::base(RelId(0), 2),
                Col::base(RelId(1), 0),
            )],
        );
        join.validate(&cat, &rels).unwrap();
        assert_eq!(join.rels(), vec![RelId(0), RelId(1)]);
        assert_eq!(join.join_count(), 1);
        assert_eq!(join.group_by_count(), 0);
    }

    #[test]
    fn scan_filter_must_be_local() {
        let (cat, rels) = setup();
        let bad = Plan::scan(
            RelId(0),
            "emp",
            vec![Predicate::eq_cols(
                Col::base(RelId(0), 2),
                Col::base(RelId(1), 0),
            )],
            all_cols(RelId(0), 5),
        );
        assert!(bad.validate(&cat, &rels).is_err());
    }

    #[test]
    fn join_children_must_be_disjoint() {
        let (cat, rels) = setup();
        let bad = Plan::join_all(emp_scan(), emp_scan(), vec![]);
        let err = bad.validate(&cat, &rels).unwrap_err();
        assert!(err.message().contains("overlap"));
    }

    #[test]
    fn group_by_validates_and_exports_aggs() {
        let (cat, rels) = setup();
        let spec = GroupBySpec {
            owner: ViewId::View(0),
            group_cols: vec![Col::base(RelId(0), 2)],
            aggs: vec![AggSpec::new(
                AggFunc::Avg,
                Expr::col(Col::base(RelId(0), 3)),
            )],
            having: vec![],
        };
        let g = Plan::group_by_all(emp_scan(), spec);
        g.validate(&cat, &rels).unwrap();
        assert_eq!(
            g.output_cols(),
            &[Col::base(RelId(0), 2), Col::agg(ViewId::View(0), 0)]
        );
        assert_eq!(g.group_by_count(), 1);
    }

    #[test]
    fn having_may_only_see_group_keys_and_own_aggs() {
        let (cat, rels) = setup();
        let spec = GroupBySpec {
            owner: ViewId::View(0),
            group_cols: vec![Col::base(RelId(0), 2)],
            aggs: vec![AggSpec::new(
                AggFunc::Avg,
                Expr::col(Col::base(RelId(0), 3)),
            )],
            // references emp.age, which is not a group key
            having: vec![Predicate::cmp_const(
                Col::base(RelId(0), 4),
                CmpOp::Lt,
                Value::Int(22),
            )],
        };
        let g = Plan::group_by_all(emp_scan(), spec);
        let err = g.validate(&cat, &rels).unwrap_err();
        assert!(err.message().contains("HAVING"));
    }

    #[test]
    fn join_predicate_over_uncomputed_aggregate_is_illegal() {
        let (cat, rels) = setup();
        // Join emp with dept comparing sal > Q1#a0, but no group-by below.
        let bad = Plan::join_all(
            emp_scan(),
            dept_scan(),
            vec![Predicate::new(
                Expr::col(Col::base(RelId(0), 3)),
                CmpOp::Gt,
                Expr::col(Col::agg(ViewId::View(0), 0)),
            )],
        );
        let err = bad.validate(&cat, &rels).unwrap_err();
        assert!(err.message().contains("unavailable"));
    }

    #[test]
    fn partial_group_by_produces_component_columns() {
        let (cat, rels) = setup();
        let aref = AggRef::new(ViewId::View(0), 0);
        let spec = PartialGroupSpec {
            group_cols: vec![Col::base(RelId(0), 2)],
            aggs: vec![(
                aref,
                AggSpec::new(AggFunc::Avg, Expr::col(Col::base(RelId(0), 3))),
            )],
        };
        let p = Plan::partial_group_by_all(emp_scan(), spec);
        p.validate(&cat, &rels).unwrap();
        assert_eq!(
            p.output_cols(),
            &[
                Col::base(RelId(0), 2),
                Col::part(aref, 0),
                Col::part(aref, 1)
            ]
        );
    }

    #[test]
    fn coalescing_pipeline_validates() {
        // PartialGroupBy → Join → GroupBy coalescing.
        let (cat, rels) = setup();
        let aref = AggRef::new(ViewId::Top, 0);
        let agg = AggSpec::new(AggFunc::Sum, Expr::col(Col::base(RelId(0), 3)));
        let partial = Plan::partial_group_by_all(
            emp_scan(),
            PartialGroupSpec {
                group_cols: vec![Col::base(RelId(0), 2)],
                aggs: vec![(aref, agg.clone())],
            },
        );
        let join = Plan::join_all(
            partial,
            dept_scan(),
            vec![Predicate::eq_cols(
                Col::base(RelId(0), 2),
                Col::base(RelId(1), 0),
            )],
        );
        let final_spec = GroupBySpec {
            owner: ViewId::Top,
            group_cols: vec![Col::base(RelId(0), 2)],
            aggs: vec![agg],
            having: vec![],
        };
        let plan = Plan::group_by_all(join, final_spec);
        plan.validate(&cat, &rels).unwrap();
        assert_eq!(plan.group_by_count(), 2);
    }

    #[test]
    fn eager_pipeline_validates_and_explains() {
        // PartialAggregate → Join → GroupBy merge with duplicate-factor
        // compensation for the kept COUNT(*).
        let (cat, rels) = setup();
        let sum_ref = AggRef::new(ViewId::Top, 0);
        let cnt_ref = AggRef::new(ViewId::Top, 2);
        let sum = AggSpec::new(AggFunc::Sum, Expr::col(Col::base(RelId(0), 3)));
        let eager = Plan::partial_aggregate_all(
            emp_scan(),
            PartialAggSpec {
                group_cols: vec![Col::base(RelId(0), 2)],
                aggs: vec![(sum_ref, sum.clone())],
                count: Some(cnt_ref),
            },
        );
        assert_eq!(
            eager.output_cols(),
            &[
                Col::base(RelId(0), 2),
                Col::part(sum_ref, 0),
                Col::part(cnt_ref, 0)
            ]
        );
        let join = Plan::join_all(
            eager,
            dept_scan(),
            vec![Predicate::eq_cols(
                Col::base(RelId(0), 2),
                Col::base(RelId(1), 0),
            )],
        );
        let plan = Plan::group_by_all(
            join,
            GroupBySpec {
                owner: ViewId::Top,
                group_cols: vec![Col::base(RelId(0), 2)],
                aggs: vec![sum, AggSpec::count_star()],
                having: vec![],
            },
        );
        plan.validate(&cat, &rels).unwrap();
        assert_eq!(plan.group_by_count(), 2);
        let text = plan.explain();
        assert!(text.contains("PartialAggregate"), "{text}");
        assert!(text.contains("keys ["), "{text}");
        assert!(text.contains("dup-count"), "{text}");
    }

    #[test]
    fn eager_requires_pushed_keys_and_available_columns() {
        let (cat, rels) = setup();
        let aref = AggRef::new(ViewId::Top, 0);
        let keyless = Plan::partial_aggregate_all(
            emp_scan(),
            PartialAggSpec {
                group_cols: vec![],
                aggs: vec![(
                    aref,
                    AggSpec::new(AggFunc::Sum, Expr::col(Col::base(RelId(0), 3))),
                )],
                count: None,
            },
        );
        assert!(keyless.validate(&cat, &rels).is_err());
        let foreign = Plan::partial_aggregate_all(
            emp_scan(),
            PartialAggSpec {
                group_cols: vec![Col::base(RelId(0), 2)],
                aggs: vec![(
                    aref,
                    AggSpec::new(AggFunc::Sum, Expr::col(Col::base(RelId(1), 2))),
                )],
                count: None,
            },
        );
        assert!(foreign.validate(&cat, &rels).is_err());
    }

    #[test]
    fn scan_table_must_match_binding() {
        let (cat, rels) = setup();
        let bad = Plan::scan(RelId(0), "dept", vec![], vec![Col::base(RelId(0), 0)]);
        assert!(bad.validate(&cat, &rels).is_err());
    }

    #[test]
    fn explain_renders_tree() {
        let join = Plan::join_all(
            emp_scan(),
            dept_scan(),
            vec![Predicate::eq_cols(
                Col::base(RelId(0), 2),
                Col::base(RelId(1), 0),
            )],
        );
        let text = join.explain();
        assert!(text.contains("Join"));
        assert!(text.contains("Scan emp"));
        assert!(text.contains("Scan dept"));
    }

    #[test]
    fn positions_of_filters_by_relation() {
        let cols = vec![
            Col::base(RelId(0), 2),
            Col::base(RelId(1), 0),
            Col::agg(ViewId::Top, 0),
        ];
        assert_eq!(positions_of(&cols, RelId(0)), vec![2]);
        assert_eq!(positions_of(&cols, RelId(1)), vec![0]);
    }

    #[test]
    fn with_project_replaces_layout() {
        let s = emp_scan().with_project(vec![Col::base(RelId(0), 3)]);
        assert_eq!(s.output_cols(), &[Col::base(RelId(0), 3)]);
    }
}
