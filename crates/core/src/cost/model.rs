//! Cardinality estimation and recursive plan costing.
//!
//! Estimation follows the System-R tradition the paper builds on:
//! uniformity within columns, independence across predicates, equijoin
//! selectivity `1/max(d₁, d₂)` from distinct counts, and group-by output
//! cardinality via the Yao/Cardenas approximation `D·(1−(1−1/D)ⁿ)`.
//! Range selectivities come from equi-depth histograms where available.
//!
//! Distinct counts are propagated *contextually* down the plan: each
//! costed subtree reports a per-column distinct estimate, so a group-by
//! above a selective join sees reduced domains — this is what lets the
//! cost model price the paper's trade-off between early and late
//! aggregation ("if the join is selective, deferring the group-by can
//! take advantage of the selectivity of the join predicate", Section 3).

use crate::cost::ops::{self, IoParams, JoinSides};
use crate::plan::{AggAlgo, JoinAlgo, Plan};
use crate::query::QueryEnv;
use aggview_common::{AggViewError, Col, ColRef, Expr, Predicate, Result};
use aggview_storage::{Catalog, PageModel};
use std::collections::BTreeMap;

/// Tunable cost-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostModel {
    /// Byte → page conversion.
    pub page: PageModel,
    /// Operator memory budget.
    pub io: IoParams,
}

/// Estimated properties of a (sub)plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanProps {
    /// Cumulative IO cost in pages.
    pub cost: f64,
    /// Estimated output rows.
    pub card: f64,
    /// Estimated output row width in bytes.
    pub width: f64,
    /// Estimated peak intermediate bytes held at any moment while
    /// executing this subtree: the largest of any child's peak, this
    /// node's own output (card × width), and — for hash joins — the
    /// build side retained alongside the output. Priced separately from
    /// `cost` so IO-cost comparisons stay unchanged; the optimizer's
    /// never-worse rule consults both.
    pub peak_bytes: f64,
    /// Per-output-column distinct-value estimates.
    pub distinct: BTreeMap<Col, f64>,
}

impl PlanProps {
    /// Estimated output size in pages.
    pub fn pages(&self, page: &PageModel) -> f64 {
        page.pages_for(self.card, self.width)
    }

    /// Estimated output size in bytes.
    pub fn out_bytes(&self) -> f64 {
        self.card * self.width
    }
}

/// Statistics-driven estimator bound to a catalog and query environment.
#[derive(Debug, Clone, Copy)]
pub struct CardEstimator<'a> {
    pub model: CostModel,
    pub catalog: &'a Catalog,
    pub env: &'a QueryEnv,
}

impl<'a> CardEstimator<'a> {
    pub fn new(model: CostModel, catalog: &'a Catalog, env: &'a QueryEnv) -> Self {
        CardEstimator {
            model,
            catalog,
            env,
        }
    }

    /// Average stored width of a column in bytes.
    pub fn col_width(&self, col: Col) -> f64 {
        match col.as_base() {
            Some(b) => self.base_col_width(b),
            None => 8.0, // aggregates and partial-state components are numeric
        }
    }

    fn base_col_width(&self, c: ColRef) -> f64 {
        self.table_stats(c)
            .map(|(s, col)| {
                if s.rows == 0 {
                    8.0
                } else {
                    s.columns[col].avg_width
                }
            })
            .unwrap_or(8.0)
    }

    fn table_stats(&self, c: ColRef) -> Option<(aggview_storage::TableStats, usize)> {
        let name = self.env.table_of(c.rel).ok()?;
        debug_assert!(
            self.catalog.stats_fresh(name),
            "cost model read stale statistics for `{name}` (data changed without re-analyze)"
        );
        let stats = self.catalog.stats_of(name).ok()?;
        Some((stats, c.col as usize))
    }

    /// Selectivity of a predicate, given per-side distinct maps (used for
    /// join selectivity) and base statistics (for column-vs-constant).
    fn pred_selectivity(&self, p: &Predicate, distinct: &BTreeMap<Col, f64>) -> f64 {
        // Column = column: 1 / max(d1, d2).
        if let Some((a, b)) = p.as_col_eq_col() {
            let da = distinct.get(&a).copied().unwrap_or(f64::NAN);
            let db = distinct.get(&b).copied().unwrap_or(f64::NAN);
            let d = da.max(db);
            if d.is_finite() && d >= 1.0 {
                return 1.0 / d;
            }
            return p.op.default_selectivity();
        }
        // Column op constant on a base column: histogram/minmax estimate.
        if let Some(sel) = self.base_vs_const_selectivity(p) {
            return sel;
        }
        p.op.default_selectivity()
    }

    fn base_vs_const_selectivity(&self, p: &Predicate) -> Option<f64> {
        let (col, op, constant) = match (&p.left, &p.right) {
            (Expr::Col(c), Expr::Const(v)) => (*c, p.op, v.clone()),
            (Expr::Const(v), Expr::Col(c)) => (*c, p.op.flipped(), v.clone()),
            _ => return None,
        };
        let b = col.as_base()?;
        let (stats, idx) = self.table_stats(b)?;
        if stats.rows == 0 {
            return Some(0.0);
        }
        Some(stats.columns[idx].selectivity(op, &constant))
    }

    /// Expected number of distinct combinations when drawing `n` rows
    /// whose key domain has `domain` combinations (Yao/Cardenas).
    pub fn yao_distinct(domain: f64, n: f64) -> f64 {
        if domain <= 1.0 {
            return domain.max(if n > 0.0 { 1.0 } else { 0.0 });
        }
        if n <= 0.0 {
            return 0.0;
        }
        // 1 - (1 - 1/D)^n, computed stably.
        let ln = (1.0 - 1.0 / domain).ln();
        let frac = 1.0 - (n * ln).exp();
        (domain * frac).min(n).min(domain).max(1.0)
    }

    /// Cost a plan bottom-up. `Auto` algorithm annotations are priced at
    /// the cheapest applicable algorithm (what the executor will pick).
    pub fn cost_plan(&self, plan: &Plan) -> Result<PlanProps> {
        match plan {
            Plan::EmptyScan { project, types, .. } => {
                // Produces nothing and reads nothing. Distincts floor at
                // 1.0 like every other estimate so selectivity math above
                // an empty input stays finite.
                let width: f64 = types.iter().map(|t| t.default_width() as f64).sum();
                Ok(PlanProps {
                    cost: 0.0,
                    card: 0.0,
                    width,
                    peak_bytes: 0.0,
                    distinct: project.iter().map(|c| (*c, 1.0)).collect(),
                })
            }
            Plan::Scan {
                rel,
                table,
                filters,
                project,
            } => {
                let t = self.catalog.get(table)?;
                debug_assert!(
                    self.catalog.stats_fresh(table),
                    "cost model read stale statistics for `{table}`"
                );
                let stats = t.stats();
                let table_pages = self
                    .model
                    .page
                    .pages_for(stats.rows as f64, stats.row_width.max(1.0));
                let mut distinct: BTreeMap<Col, f64> = (0..t.schema().len())
                    .map(|c| {
                        (
                            Col::base(*rel, c),
                            stats
                                .columns
                                .get(c)
                                .map(|s| s.distinct as f64)
                                .unwrap_or(1.0),
                        )
                    })
                    .collect();
                let mut card = stats.rows as f64;
                for f in filters {
                    card *= self.pred_selectivity(f, &distinct);
                }
                card = card.max(0.0);
                // Cap distincts by the surviving cardinality.
                for d in distinct.values_mut() {
                    *d = d.min(card.max(1.0));
                }
                distinct.retain(|c, _| project.contains(c));
                let width: f64 = project.iter().map(|c| self.col_width(*c)).sum();
                Ok(PlanProps {
                    cost: ops::scan_io(table_pages),
                    card,
                    width,
                    peak_bytes: card * width,
                    distinct,
                })
            }
            Plan::Join {
                algo,
                left,
                right,
                preds,
                project,
            } => {
                let l = self.cost_plan(left)?;
                let r = self.cost_plan(right)?;
                let mut distinct = l.distinct.clone();
                distinct.extend(r.distinct.iter().map(|(k, v)| (*k, *v)));
                let mut card = l.card * r.card;
                for p in preds {
                    card *= self.pred_selectivity(p, &distinct);
                }
                card = card.max(0.0);
                for d in distinct.values_mut() {
                    *d = d.min(card.max(1.0));
                }
                distinct.retain(|c, _| project.contains(c));
                let width: f64 = project.iter().map(|c| self.col_width(*c)).sum();
                let sides = JoinSides {
                    left_rows: l.card,
                    left_pages: l.pages(&self.model.page),
                    right_rows: r.card,
                    right_pages: r.pages(&self.model.page),
                };
                let mem = self.model.io.mem_pages;
                let extra = match algo {
                    JoinAlgo::Auto => ops::best_join(&sides, preds, mem).1,
                    a => {
                        if !ops::join_algo_applicable(*a, preds) {
                            return Err(AggViewError::Plan(format!(
                                "join algorithm {a} requires an equality predicate"
                            )));
                        }
                        ops::join_io(*a, &sides, preds, mem)
                    }
                };
                // The probe streams, but the build side (the smaller
                // input) is held while the output accumulates.
                let build_bytes = l.out_bytes().min(r.out_bytes());
                let peak_bytes = l
                    .peak_bytes
                    .max(r.peak_bytes)
                    .max(card * width + build_bytes);
                Ok(PlanProps {
                    cost: l.cost + r.cost + extra,
                    card,
                    width,
                    peak_bytes,
                    distinct,
                })
            }
            Plan::GroupBy {
                algo,
                input,
                spec,
                project,
            } => {
                let i = self.cost_plan(input)?;
                let domain: f64 = spec
                    .group_cols
                    .iter()
                    .map(|c| i.distinct.get(c).copied().unwrap_or(DEFAULT_AGG_DISTINCT))
                    .fold(1.0, |a, b| (a * b).min(1e18));
                let groups = Self::yao_distinct(domain, i.card);
                let mut card = groups;
                let mut distinct: BTreeMap<Col, f64> = spec
                    .group_cols
                    .iter()
                    .map(|c| {
                        (
                            *c,
                            i.distinct
                                .get(c)
                                .copied()
                                .unwrap_or(DEFAULT_AGG_DISTINCT)
                                .min(groups.max(1.0)),
                        )
                    })
                    .collect();
                for (idx, _) in spec.aggs.iter().enumerate() {
                    distinct.insert(Col::agg(spec.owner, idx), groups.max(1.0));
                }
                for h in &spec.having {
                    card *= self.pred_selectivity(h, &distinct);
                }
                card = card.max(0.0);
                distinct.retain(|c, _| project.contains(c));
                let width: f64 = project.iter().map(|c| self.col_width(*c)).sum();
                let in_pages = i.pages(&self.model.page);
                let out_pages = self.model.page.pages_for(groups, width.max(1.0));
                let io = self.model.io;
                let extra = match algo {
                    AggAlgo::Auto => ops::best_agg(in_pages, out_pages, &io).1,
                    AggAlgo::Hash => ops::hash_agg_io(in_pages, out_pages, &io),
                    AggAlgo::Sort => ops::sort_agg_io(in_pages, io.mem_pages),
                };
                Ok(PlanProps {
                    cost: i.cost + extra,
                    card,
                    width,
                    peak_bytes: i.peak_bytes.max(groups * width),
                    distinct,
                })
            }
            Plan::PartialGroupBy {
                algo,
                input,
                spec,
                project,
            } => {
                let i = self.cost_plan(input)?;
                let domain: f64 = spec
                    .group_cols
                    .iter()
                    .map(|c| i.distinct.get(c).copied().unwrap_or(DEFAULT_AGG_DISTINCT))
                    .fold(1.0, |a, b| (a * b).min(1e18));
                let groups = Self::yao_distinct(domain, i.card);
                let mut distinct: BTreeMap<Col, f64> = spec
                    .group_cols
                    .iter()
                    .map(|c| {
                        (
                            *c,
                            i.distinct
                                .get(c)
                                .copied()
                                .unwrap_or(DEFAULT_AGG_DISTINCT)
                                .min(groups.max(1.0)),
                        )
                    })
                    .collect();
                for (idx, _) in spec.aggs.iter().enumerate() {
                    for k in 0..spec.aggs[idx].1.func.partial_arity() {
                        distinct.insert(Col::part(spec.aggs[idx].0, k), groups.max(1.0));
                    }
                }
                distinct.retain(|c, _| project.contains(c));
                let width: f64 = project.iter().map(|c| self.col_width(*c)).sum();
                let in_pages = i.pages(&self.model.page);
                let out_pages = self.model.page.pages_for(groups, width.max(1.0));
                let io = self.model.io;
                let extra = match algo {
                    AggAlgo::Auto => ops::best_agg(in_pages, out_pages, &io).1,
                    AggAlgo::Hash => ops::hash_agg_io(in_pages, out_pages, &io),
                    AggAlgo::Sort => ops::sort_agg_io(in_pages, io.mem_pages),
                };
                Ok(PlanProps {
                    cost: i.cost + extra,
                    card: groups,
                    width,
                    peak_bytes: i.peak_bytes.max(groups * width),
                    distinct,
                })
            }
            Plan::PartialAggregate {
                algo,
                input,
                spec,
                project,
            } => {
                let i = self.cost_plan(input)?;
                let domain: f64 = spec
                    .group_cols
                    .iter()
                    .map(|c| i.distinct.get(c).copied().unwrap_or(DEFAULT_AGG_DISTINCT))
                    .fold(1.0, |a, b| (a * b).min(1e18));
                let groups = Self::yao_distinct(domain, i.card);
                let mut distinct: BTreeMap<Col, f64> = spec
                    .group_cols
                    .iter()
                    .map(|c| {
                        (
                            *c,
                            i.distinct
                                .get(c)
                                .copied()
                                .unwrap_or(DEFAULT_AGG_DISTINCT)
                                .min(groups.max(1.0)),
                        )
                    })
                    .collect();
                for (aref, a) in &spec.aggs {
                    for k in 0..a.func.partial_arity() {
                        distinct.insert(Col::part(*aref, k), groups.max(1.0));
                    }
                }
                if let Some(c) = spec.count_col() {
                    distinct.insert(c, groups.max(1.0));
                }
                distinct.retain(|c, _| project.contains(c));
                let width: f64 = project.iter().map(|c| self.col_width(*c)).sum();
                let in_pages = i.pages(&self.model.page);
                let out_pages = self.model.page.pages_for(groups, width.max(1.0));
                let io = self.model.io;
                let extra = match algo {
                    AggAlgo::Auto => ops::best_agg(in_pages, out_pages, &io).1,
                    AggAlgo::Hash => ops::hash_agg_io(in_pages, out_pages, &io),
                    AggAlgo::Sort => ops::sort_agg_io(in_pages, io.mem_pages),
                };
                Ok(PlanProps {
                    cost: i.cost + extra,
                    card: groups,
                    width,
                    peak_bytes: i.peak_bytes.max(groups * width),
                    distinct,
                })
            }
            Plan::ExtentScan {
                table,
                cols,
                outputs,
                filters,
                project,
                ..
            } => {
                // Priced exactly like a base-table scan of the extent: the
                // materialized row count, widths and distinct counts come
                // from the extent table's own statistics, exposed under
                // the logical identities the scan maps them to.
                let t = self.catalog.get(table)?;
                debug_assert!(
                    self.catalog.stats_fresh(table),
                    "cost model read stale statistics for extent `{table}`"
                );
                let stats = t.stats();
                let table_pages = self
                    .model
                    .page
                    .pages_for(stats.rows as f64, stats.row_width.max(1.0));
                let mut distinct: BTreeMap<Col, f64> = cols
                    .iter()
                    .zip(outputs)
                    .map(|(&c, &o)| {
                        (
                            o,
                            stats
                                .columns
                                .get(c)
                                .map(|s| s.distinct as f64)
                                .unwrap_or(1.0),
                        )
                    })
                    .collect();
                let mut card = stats.rows as f64;
                for f in filters {
                    card *= self.pred_selectivity(f, &distinct);
                }
                card = card.max(0.0);
                for d in distinct.values_mut() {
                    *d = d.min(card.max(1.0));
                }
                let width: f64 = project
                    .iter()
                    .map(|p| {
                        outputs
                            .iter()
                            .position(|o| o == p)
                            .and_then(|i| stats.columns.get(cols[i]))
                            .map(|s| s.avg_width)
                            .unwrap_or(8.0)
                    })
                    .sum();
                distinct.retain(|c, _| project.contains(c));
                Ok(PlanProps {
                    cost: ops::scan_io(table_pages),
                    card,
                    width,
                    peak_bytes: card * width,
                    distinct,
                })
            }
        }
    }

    /// [`Plan::explain`] with each operator line annotated with the
    /// estimated peak intermediate bytes of its subtree (backs the
    /// REPL's `.explain` and `.lint`). Operators whose subtree cannot be
    /// costed (e.g. stale statistics) are left unannotated.
    pub fn explain_with_peaks(&self, plan: &Plan) -> String {
        let mut peaks = Vec::new();
        self.collect_peaks(plan, &mut peaks);
        let mut out = String::new();
        for (line, peak) in plan.explain().lines().zip(peaks) {
            out.push_str(line);
            if let Some(p) = peak {
                out.push_str(&format!("  ~peak {}", fmt_bytes(p)));
            }
            out.push('\n');
        }
        out
    }

    /// Pre-order per-node peak estimates, in the same order
    /// `explain_into` emits lines (one per node; join children
    /// left-then-right).
    fn collect_peaks(&self, plan: &Plan, out: &mut Vec<Option<f64>>) {
        out.push(self.cost_plan(plan).ok().map(|p| p.peak_bytes));
        match plan {
            Plan::Join { left, right, .. } => {
                self.collect_peaks(left, out);
                self.collect_peaks(right, out);
            }
            Plan::GroupBy { input, .. }
            | Plan::PartialGroupBy { input, .. }
            | Plan::PartialAggregate { input, .. } => self.collect_peaks(input, out),
            Plan::Scan { .. } | Plan::ExtentScan { .. } | Plan::EmptyScan { .. } => {}
        }
    }
}

/// Compact human-readable byte count for EXPLAIN annotations.
fn fmt_bytes(b: f64) -> String {
    if b >= 1e6 {
        format!("{:.1}MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1}KB", b / 1e3)
    } else {
        format!("{b:.0}B")
    }
}

/// Fallback distinct estimate for columns whose provenance the estimator
/// has lost (e.g. an aggregate output used as a grouping column without
/// context).
const DEFAULT_AGG_DISTINCT: f64 = 100.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{all_cols, GroupBySpec};
    use crate::query::examples::{emp, example2_query};
    use aggview_common::{AggFunc, AggSpec, CmpOp, RelId, Value, ViewId};
    use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

    fn setup() -> (Catalog, QueryEnv) {
        let cat = gen_empdept(&EmpDeptConfig {
            n_depts: 50,
            emps_per_dept: 20,
            young_fraction: 0.1,
            ..Default::default()
        })
        .unwrap();
        let env = example2_query().env;
        (cat, env)
    }

    #[test]
    fn scan_card_uses_histograms() {
        let (cat, env) = setup();
        let est = CardEstimator::new(CostModel::default(), &cat, &env);
        let scan = Plan::scan(
            RelId(0),
            "emp",
            vec![Predicate::cmp_const(
                Col::base(RelId(0), emp::AGE),
                CmpOp::Lt,
                Value::Int(22),
            )],
            all_cols(RelId(0), 5),
        );
        let props = est.cost_plan(&scan).unwrap();
        // 10% of 1000 employees are under 22 → estimate within 2x.
        assert!(
            props.card > 40.0 && props.card < 250.0,
            "card {}",
            props.card
        );
        assert!(props.cost > 0.0);
    }

    #[test]
    fn join_selectivity_from_distinct_counts() {
        let (cat, env) = setup();
        let est = CardEstimator::new(CostModel::default(), &cat, &env);
        let e = Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5));
        let d = Plan::scan(RelId(1), "dept", vec![], all_cols(RelId(1), 4));
        let j = Plan::join_all(
            e,
            d,
            vec![Predicate::eq_cols(
                Col::base(RelId(0), emp::DNO),
                Col::base(RelId(1), 0),
            )],
        );
        let props = est.cost_plan(&j).unwrap();
        // FK join: output ≈ |emp| = 1000.
        assert!(
            (props.card - 1000.0).abs() < 50.0,
            "join card {}",
            props.card
        );
    }

    #[test]
    fn group_by_card_is_group_count() {
        let (cat, env) = setup();
        let est = CardEstimator::new(CostModel::default(), &cat, &env);
        let e = Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5));
        let g = Plan::group_by_all(
            e,
            GroupBySpec {
                owner: ViewId::Top,
                group_cols: vec![Col::base(RelId(0), emp::DNO)],
                aggs: vec![AggSpec::new(
                    AggFunc::Avg,
                    aggview_common::Expr::col(Col::base(RelId(0), emp::SAL)),
                )],
                having: vec![],
            },
        );
        let props = est.cost_plan(&g).unwrap();
        assert!((props.card - 50.0).abs() < 5.0, "groups {}", props.card);
        // Aggregate output column has one value per group.
        assert!(props.distinct.contains_key(&Col::agg(ViewId::Top, 0)));
    }

    #[test]
    fn yao_behaves_at_extremes() {
        // Tiny domain: all groups realized.
        assert!((CardEstimator::yao_distinct(10.0, 10_000.0) - 10.0).abs() < 1e-6);
        // Huge domain: every row its own group.
        let d = CardEstimator::yao_distinct(1e12, 100.0);
        assert!((d - 100.0).abs() < 1.0, "{d}");
        // Zero rows → zero groups.
        assert_eq!(CardEstimator::yao_distinct(10.0, 0.0), 0.0);
        // Monotone in n.
        assert!(
            CardEstimator::yao_distinct(100.0, 50.0) <= CardEstimator::yao_distinct(100.0, 500.0)
        );
    }

    #[test]
    fn having_reduces_cardinality() {
        let (cat, env) = setup();
        let est = CardEstimator::new(CostModel::default(), &cat, &env);
        let e = Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5));
        let mk = |having: Vec<Predicate>| {
            Plan::group_by_all(
                e.clone(),
                GroupBySpec {
                    owner: ViewId::Top,
                    group_cols: vec![Col::base(RelId(0), emp::DNO)],
                    aggs: vec![AggSpec::new(
                        AggFunc::Avg,
                        aggview_common::Expr::col(Col::base(RelId(0), emp::SAL)),
                    )],
                    having,
                },
            )
        };
        let without = est.cost_plan(&mk(vec![])).unwrap();
        let with = est
            .cost_plan(&mk(vec![Predicate::new(
                aggview_common::Expr::col(Col::agg(ViewId::Top, 0)),
                CmpOp::Gt,
                aggview_common::Expr::val(Value::Float(100_000.0)),
            )]))
            .unwrap();
        assert!(with.card < without.card);
    }

    #[test]
    fn width_tracks_projection() {
        let (cat, env) = setup();
        let est = CardEstimator::new(CostModel::default(), &cat, &env);
        let wide = Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5));
        let narrow = Plan::scan(RelId(0), "emp", vec![], vec![Col::base(RelId(0), emp::DNO)]);
        let w = est.cost_plan(&wide).unwrap();
        let n = est.cost_plan(&narrow).unwrap();
        assert!(n.width < w.width);
        // Same IO though: the whole table is read either way.
        assert_eq!(n.cost, w.cost);
    }

    #[test]
    fn explicit_algo_requiring_equality_rejected_without_one() {
        let (cat, env) = setup();
        let est = CardEstimator::new(CostModel::default(), &cat, &env);
        let e = Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5));
        let d = Plan::scan(RelId(1), "dept", vec![], all_cols(RelId(1), 4));
        let mut j = Plan::join_all(e, d, vec![]);
        if let Plan::Join { algo, .. } = &mut j {
            *algo = JoinAlgo::Hash;
        }
        assert!(est.cost_plan(&j).is_err());
    }
}
