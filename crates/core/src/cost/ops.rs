//! Page-IO charging formulas for physical operators.
//!
//! Conventions:
//!
//! * Inputs to an operator are *pipelined*: producing them is charged by
//!   the producer, so each formula charges only the **extra** IO the
//!   operator itself incurs (temp-file writes/reads, partition spills,
//!   inner rescans). A base-table scan charges the table's pages.
//! * All sizes are fractional page counts (expected values in the
//!   estimator, measured byte-derived values in the executor).
//! * `mem` is the operator's memory budget in pages.

use crate::plan::JoinAlgo;
use aggview_common::Predicate;

/// Shared parameters: memory budget and aggregation spill model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoParams {
    /// Pages of working memory available to a single operator.
    pub mem_pages: f64,
    /// Ablation knob: charge spilled aggregation like a non-aggregating
    /// Grace partition (`2 × input`) instead of the default hybrid
    /// early-aggregation model (`2 × min(output, input)`). See
    /// DESIGN.md §3a — under the Grace model early aggregation can
    /// never beat the join partitioning it replaces.
    pub grace_agg: bool,
}

impl Default for IoParams {
    fn default() -> Self {
        IoParams {
            mem_pages: 64.0,
            grace_agg: false,
        }
    }
}

/// The per-side quantities a join cost formula needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinSides {
    /// Left input: (rows, pages).
    pub left_rows: f64,
    pub left_pages: f64,
    /// Right input: (rows, pages).
    pub right_rows: f64,
    pub right_pages: f64,
}

/// Extra IO of a full table scan: the table's pages (this is the one
/// operator whose input is not pipelined).
pub fn scan_io(table_pages: f64) -> f64 {
    table_pages
}

/// External-sort IO for `pages` with `mem` pages of memory: zero if the
/// input fits, else two transfers (write + read) per pass.
pub fn sort_io(pages: f64, mem: f64) -> f64 {
    if pages <= mem || pages <= 0.0 {
        return 0.0;
    }
    let fan_in = (mem - 1.0).max(2.0);
    let initial_runs = (pages / mem).ceil().max(1.0);
    let passes = 1.0 + initial_runs.log(fan_in).ceil().max(0.0);
    2.0 * pages * passes
}

/// Grace hash join: free when the smaller (build) side fits in memory,
/// else one partition round over both inputs (write + read each).
pub fn hash_join_io(sides: &JoinSides, mem: f64) -> f64 {
    let build = sides.left_pages.min(sides.right_pages);
    if build <= mem {
        0.0
    } else {
        2.0 * (sides.left_pages + sides.right_pages)
    }
}

/// Sort-merge join: sort both sides (zero for a side that fits).
pub fn sort_merge_join_io(sides: &JoinSides, mem: f64) -> f64 {
    sort_io(sides.left_pages, mem) + sort_io(sides.right_pages, mem)
}

/// Block nested loops: outer consumed in memory-sized chunks, inner
/// rescanned per chunk. The first inner pass is free (pipelined); later
/// passes require the inner to have been saved to a temp file (one
/// write) and re-read.
pub fn block_nl_io(sides: &JoinSides, mem: f64) -> f64 {
    let outer = sides.left_pages.max(sides.right_pages);
    let inner = sides.left_pages.min(sides.right_pages);
    let chunk = (mem - 1.0).max(1.0);
    let chunks = (outer / chunk).ceil().max(1.0);
    if chunks <= 1.0 {
        0.0
    } else {
        inner + (chunks - 1.0) * inner
    }
}

/// Tuple-at-a-time nested loops: the inner is rescanned once per outer
/// tuple (beyond the pipelined first pass). Deliberately naive — the
/// educational floor of the execution space.
pub fn nested_loop_io(sides: &JoinSides) -> f64 {
    let rescans = (sides.left_rows - 1.0).max(0.0);
    sides.right_pages + rescans * sides.right_pages
}

/// Hybrid hash aggregation: free when the *output* (the hash table of
/// groups) fits in memory. Otherwise, spill with **early aggregation**:
/// input rows are aggregated into per-partition group states before
/// being written, so the spill volume is the compacted groups — bounded
/// by both the output size and the input size (whichever is smaller),
/// written once and read back once.
///
/// This is the aggregation model eager/lazy-aggregation systems assume
/// (\[YL94\]/\[YL95\], the paper's push-down sources); a non-aggregating
/// Grace fallback would charge `2 × input` and systematically hide the
/// benefit of early aggregation.
pub fn hash_agg_io(input_pages: f64, output_pages: f64, io: &IoParams) -> f64 {
    if output_pages <= io.mem_pages {
        0.0
    } else if io.grace_agg {
        2.0 * input_pages
    } else {
        2.0 * output_pages.min(input_pages)
    }
}

/// Sort-based aggregation: sort the input, aggregate on the fly.
pub fn sort_agg_io(input_pages: f64, mem: f64) -> f64 {
    sort_io(input_pages, mem)
}

/// Whether a join algorithm can execute the given predicate set:
/// hash and sort-merge need at least one column-equality predicate.
pub fn join_algo_applicable(algo: JoinAlgo, preds: &[Predicate]) -> bool {
    match algo {
        JoinAlgo::Hash | JoinAlgo::SortMerge => preds.iter().any(|p| p.as_col_eq_col().is_some()),
        _ => true,
    }
}

/// Cheapest applicable join algorithm for the given sides, with its
/// extra IO.
pub fn best_join(sides: &JoinSides, preds: &[Predicate], mem: f64) -> (JoinAlgo, f64) {
    let mut best = (JoinAlgo::NestedLoop, nested_loop_io(sides));
    let bnl = block_nl_io(sides, mem);
    if bnl < best.1 {
        best = (JoinAlgo::BlockNested, bnl);
    }
    if join_algo_applicable(JoinAlgo::Hash, preds) {
        let h = hash_join_io(sides, mem);
        if h < best.1 {
            best = (JoinAlgo::Hash, h);
        }
    }
    if join_algo_applicable(JoinAlgo::SortMerge, preds) {
        let m = sort_merge_join_io(sides, mem);
        if m < best.1 {
            best = (JoinAlgo::SortMerge, m);
        }
    }
    best
}

/// Extra IO of a specific join algorithm.
pub fn join_io(algo: JoinAlgo, sides: &JoinSides, preds: &[Predicate], mem: f64) -> f64 {
    match algo {
        JoinAlgo::Auto => best_join(sides, preds, mem).1,
        JoinAlgo::NestedLoop => nested_loop_io(sides),
        JoinAlgo::BlockNested => block_nl_io(sides, mem),
        JoinAlgo::Hash => hash_join_io(sides, mem),
        JoinAlgo::SortMerge => sort_merge_join_io(sides, mem),
    }
}

/// Cheapest aggregation algorithm, with its extra IO.
pub fn best_agg(input_pages: f64, output_pages: f64, io: &IoParams) -> (crate::plan::AggAlgo, f64) {
    let h = hash_agg_io(input_pages, output_pages, io);
    let s = sort_agg_io(input_pages, io.mem_pages);
    if h <= s {
        (crate::plan::AggAlgo::Hash, h)
    } else {
        (crate::plan::AggAlgo::Sort, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_common::{Col, Predicate, RelId};

    fn sides(lr: f64, lp: f64, rr: f64, rp: f64) -> JoinSides {
        JoinSides {
            left_rows: lr,
            left_pages: lp,
            right_rows: rr,
            right_pages: rp,
        }
    }

    fn eq_pred() -> Vec<Predicate> {
        vec![Predicate::eq_cols(
            Col::base(RelId(0), 0),
            Col::base(RelId(1), 0),
        )]
    }

    #[test]
    fn hash_join_free_when_build_fits() {
        assert_eq!(hash_join_io(&sides(1e4, 100.0, 1e5, 1000.0), 128.0), 0.0);
        // Build (smaller side) exceeds memory → 2(L+R).
        assert_eq!(
            hash_join_io(&sides(1e4, 200.0, 1e5, 1000.0), 128.0),
            2.0 * 1200.0
        );
    }

    #[test]
    fn sort_io_zero_when_fits() {
        assert_eq!(sort_io(10.0, 64.0), 0.0);
        assert!(sort_io(1000.0, 64.0) >= 2.0 * 1000.0);
        // More memory never increases sort cost.
        assert!(sort_io(10_000.0, 128.0) <= sort_io(10_000.0, 16.0));
    }

    #[test]
    fn block_nl_free_when_outer_fits() {
        assert_eq!(block_nl_io(&sides(100.0, 10.0, 100.0, 10.0), 64.0), 0.0);
        let io = block_nl_io(&sides(1e4, 630.0, 100.0, 10.0), 64.0);
        // 10 chunks → write inner once + 9 rescans = 100 pages.
        assert_eq!(io, 100.0);
    }

    #[test]
    fn block_nl_uses_smaller_side_as_inner() {
        let a = block_nl_io(&sides(1e4, 630.0, 100.0, 10.0), 64.0);
        let b = block_nl_io(&sides(100.0, 10.0, 1e4, 630.0), 64.0);
        assert_eq!(a, b, "symmetric: smaller side becomes inner");
    }

    #[test]
    fn nested_loop_scales_with_outer_rows() {
        let io = nested_loop_io(&sides(1000.0, 10.0, 500.0, 5.0));
        assert_eq!(io, 5.0 * 1000.0);
    }

    #[test]
    fn hash_requires_equality_predicate() {
        assert!(join_algo_applicable(JoinAlgo::Hash, &eq_pred()));
        assert!(!join_algo_applicable(JoinAlgo::Hash, &[]));
        assert!(join_algo_applicable(JoinAlgo::BlockNested, &[]));
    }

    #[test]
    fn best_join_prefers_hash_for_equijoins_that_fit() {
        let (algo, io) = best_join(&sides(1e5, 1000.0, 1e4, 50.0), &eq_pred(), 64.0);
        assert_eq!(algo, JoinAlgo::Hash);
        assert_eq!(io, 0.0);
    }

    #[test]
    fn best_join_without_equality_falls_back() {
        let (algo, _) = best_join(&sides(1e4, 100.0, 1e4, 100.0), &[], 64.0);
        assert_eq!(algo, JoinAlgo::BlockNested);
    }

    #[test]
    fn hash_agg_depends_on_output_size() {
        let io = IoParams {
            mem_pages: 64.0,
            grace_agg: false,
        };
        assert_eq!(hash_agg_io(1000.0, 10.0, &io), 0.0);
        // Spill volume is the compacted groups (early aggregation).
        assert_eq!(hash_agg_io(1000.0, 100.0, &io), 200.0);
        // ... but never more than the input itself.
        assert_eq!(hash_agg_io(50.0, 100.0, &io), 100.0);
        // Ablation: the Grace model charges the full input.
        let grace = IoParams {
            mem_pages: 64.0,
            grace_agg: true,
        };
        assert_eq!(hash_agg_io(1000.0, 100.0, &grace), 2000.0);
        assert_eq!(hash_agg_io(1000.0, 10.0, &grace), 0.0);
    }

    #[test]
    fn best_agg_picks_cheaper() {
        let p = IoParams {
            mem_pages: 64.0,
            grace_agg: false,
        };
        // Tiny output → hash free.
        let (algo, io) = best_agg(1000.0, 5.0, &p);
        assert_eq!(algo, crate::plan::AggAlgo::Hash);
        assert_eq!(io, 0.0);
        // Huge output, input fits → sort free (input ≤ mem handles both).
        let (_, io2) = best_agg(30.0, 100.0, &p);
        assert_eq!(io2, 0.0);
    }

    #[test]
    fn join_io_dispatches() {
        let s = sides(100.0, 10.0, 100.0, 10.0);
        assert_eq!(
            join_io(JoinAlgo::Hash, &s, &eq_pred(), 64.0),
            hash_join_io(&s, 64.0)
        );
        assert_eq!(
            join_io(JoinAlgo::Auto, &s, &eq_pred(), 64.0),
            best_join(&s, &eq_pred(), 64.0).1
        );
    }

    #[test]
    fn costs_monotone_in_input_size() {
        // Doubling input sizes never decreases any formula.
        let small = sides(1e3, 100.0, 1e3, 100.0);
        let big = sides(2e3, 200.0, 2e3, 200.0);
        for mem in [8.0, 64.0] {
            assert!(hash_join_io(&big, mem) >= hash_join_io(&small, mem));
            assert!(block_nl_io(&big, mem) >= block_nl_io(&small, mem));
            assert!(sort_merge_join_io(&big, mem) >= sort_merge_join_io(&small, mem));
            assert!(nested_loop_io(&big) >= nested_loop_io(&small));
        }
    }
}
