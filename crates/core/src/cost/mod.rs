//! The IO cost model (paper Section 5).
//!
//! "The optimization algorithm that we present minimizes IO cost. This
//! is a reasonable criterion in the context of decision-support
//! applications where the volume of stored data is large. ... The cost
//! model is assumed to satisfy the principle of optimality."
//!
//! * [`ops`] — the page-IO charging formulas for each physical operator.
//!   These are **shared with the executor**: the optimizer evaluates them
//!   over *estimated* cardinalities, the executor over *measured* ones,
//!   so estimation error (experiment E9) is exactly the difference in
//!   inputs, never a difference in formulas.
//! * [`model`] — statistics-driven cardinality estimation (selectivity
//!   of selections from histograms, join selectivity from distinct
//!   counts, group-by output cardinality via the Yao approximation) and
//!   recursive plan costing.

pub mod model;
pub mod ops;

pub use model::{CardEstimator, CostModel, PlanProps};
pub use ops::{IoParams, JoinSides};
