//! # aggview-core — the paper's contribution
//!
//! Cost-based optimization of queries with aggregate views, after
//! Chaudhuri & Shim (EDBT 1996). The crate is organized along the
//! paper's sections:
//!
//! * [`plan`] — operator trees (join + group-by with annotated grouping
//!   columns, aggregates, HAVING predicates and projection lists; the
//!   paper's Section 2 algebraic view), including *legal operator tree*
//!   validation,
//! * [`query`] — the canonical multi-block query form of Figure 3: a join
//!   among base tables and aggregate views under an optional top group-by,
//! * [`transform`] — Section 3's **pull-up** transformation
//!   (Definition 1) and Section 4's **push-down** transformations
//!   (invariant grouping, simple coalescing grouping), plus the *minimal
//!   invariant set* computation,
//! * [`cost`] — the IO-only cost model (Section 5's optimization
//!   criterion): page-based operator costs shared with the executor, and
//!   statistics-driven cardinality estimation,
//! * [`optimizer`] — Section 5's algorithms: Selinger-style DP join
//!   enumeration ([SAC+79]), the greedy conservative heuristic
//!   (Section 5.2 / \[CS94\]), the two-phase algorithm for one aggregate
//!   view (Section 5.3), its generalization to multiple views
//!   (Section 5.4), the traditional two-phase baseline, and search-space
//!   accounting with the paper's practical restrictions (k-level pull-up,
//!   predicate-connectivity gating),
//! * [`matview`] — matching query blocks against materialized
//!   aggregate-view extents (finalized rows or Figure 2 partial states),
//!   enumerated as additional costed access paths,
//! * [`analyze`] — the static plan-integrity analyzer: a typed schema
//!   pass plus machine-checked forms of the transformation invariants
//!   above (Definition 1's key rule, the invariant-grouping key-join
//!   condition, Figure 2's coalescing merge stage) and cost-annotation
//!   sanity, with a seeded-mutation negative-test harness.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod cost;
pub mod governor;
pub mod matview;
pub mod optimizer;
pub mod plan;
pub mod query;
pub mod transform;

pub use analyze::{AnalysisReport, PlanAnalyzer, Violation};
pub use cost::{CardEstimator, CostModel, PlanProps};
pub use governor::{
    CancellationToken, DegradationReason, OptimizeOutcome, ResourceGovernor, ResourceLimits,
};
pub use optimizer::multi_view::{optimize, optimize_governed, Optimized};
pub use optimizer::single_view::{optimize_single_view, optimize_single_view_governed};
pub use optimizer::traditional::{optimize_traditional, optimize_traditional_governed};
pub use optimizer::{OptimizerConfig, PullUpLevel, SearchStats};
pub use plan::{AggAlgo, GroupBySpec, JoinAlgo, PartialGroupSpec, Plan};
pub use query::{CanonicalQuery, QueryEnv, TopGroup, ViewDef};
