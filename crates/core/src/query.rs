//! The canonical multi-block query form (paper Figure 3).
//!
//! A query is a join among base tables `B1..Bn` and aggregate views
//! `Q1..Qm` — each view `Qi = Gi(Vi)` an SPJ block under a group-by —
//! optionally under a top-level group-by `G0` with a HAVING clause.
//! Every optimizer entry point takes a [`CanonicalQuery`]; the SQL
//! binder lowers parsed SQL (including flattened nested subqueries) into
//! this form.

use aggview_common::{AggSpec, AggViewError, Col, Predicate, RelId, Result, ViewId};
use aggview_storage::Catalog;
use std::collections::BTreeSet;
use std::fmt;

/// Per-query environment: which base table each relation instance
/// denotes. `rel_tables[r.idx()]` is the table scanned by `RelId r`.
#[derive(Debug, Clone, Default)]
pub struct QueryEnv {
    /// Relation instance → base table name.
    pub rel_tables: Vec<String>,
}

impl QueryEnv {
    pub fn new(rel_tables: Vec<String>) -> QueryEnv {
        QueryEnv { rel_tables }
    }

    /// Table name bound to `rel`.
    pub fn table_of(&self, rel: RelId) -> Result<&str> {
        self.rel_tables
            .get(rel.idx())
            .map(String::as_str)
            .ok_or_else(|| AggViewError::Plan(format!("undeclared relation {rel}")))
    }

    /// Number of relation instances.
    pub fn len(&self) -> usize {
        self.rel_tables.len()
    }

    /// True when no relations are declared.
    pub fn is_empty(&self) -> bool {
        self.rel_tables.is_empty()
    }

    /// Register a new relation instance, returning its id.
    pub fn add_rel(&mut self, table: impl Into<String>) -> RelId {
        let id = RelId(self.rel_tables.len() as u32);
        self.rel_tables.push(table.into());
        id
    }
}

/// An aggregate view `Qi = G(gi, Ai)(Vi)`: an SPJ block (`rels`,
/// `preds`) under a group-by.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDef {
    /// Which view this is (0-based; its group-by is `ViewId::View(index)`).
    pub index: u32,
    /// Relations of the SPJ block `Vi`.
    pub rels: Vec<RelId>,
    /// Conjunctive predicates of `Vi` (selections and joins among `rels`).
    pub preds: Vec<Predicate>,
    /// Grouping columns `gi` (base columns of `rels`).
    pub group_cols: Vec<Col>,
    /// Aggregate list `Ai`.
    pub aggs: Vec<AggSpec>,
    /// View-level HAVING predicates.
    pub having: Vec<Predicate>,
}

impl ViewDef {
    /// The view's group-by identity.
    pub fn id(&self) -> ViewId {
        ViewId::View(self.index)
    }

    /// Columns the view exports to the outer block: its grouping columns
    /// followed by its aggregate outputs.
    pub fn exported_cols(&self) -> Vec<Col> {
        let mut out = self.group_cols.clone();
        out.extend((0..self.aggs.len()).map(|i| Col::agg(self.id(), i)));
        out
    }

    /// Bitset of the view's relations.
    pub fn rel_set(&self) -> u64 {
        self.rels.iter().map(|r| r.bit()).fold(0, |a, b| a | b)
    }
}

/// The top-level group-by `G0`.
#[derive(Debug, Clone, PartialEq)]
pub struct TopGroup {
    /// Grouping columns (base columns or view aggregate outputs).
    pub group_cols: Vec<Col>,
    /// Aggregate list `A0`.
    pub aggs: Vec<AggSpec>,
    /// Query-level HAVING predicates.
    pub having: Vec<Predicate>,
}

/// A query in the canonical form of Figure 3.
#[derive(Debug, Clone)]
pub struct CanonicalQuery {
    /// Relation instance → table bindings.
    pub env: QueryEnv,
    /// Aggregate views `Q1..Qm`.
    pub views: Vec<ViewDef>,
    /// Base relations `B1..Bn` of the outer block.
    pub base_rels: Vec<RelId>,
    /// Outer-block predicates: joins among views and base relations, and
    /// selections on base relations. May reference view grouping columns
    /// and view aggregate outputs.
    pub preds: Vec<Predicate>,
    /// Optional top group-by `G0`.
    pub group: Option<TopGroup>,
    /// Final projection (columns visible to the client).
    pub projection: Vec<Col>,
}

impl CanonicalQuery {
    /// All relation instances of the query (view-internal and base).
    pub fn all_rels(&self) -> Vec<RelId> {
        let mut rels: Vec<RelId> = self.views.iter().flat_map(|v| v.rels.clone()).collect();
        rels.extend(self.base_rels.iter().copied());
        rels.sort_unstable();
        rels
    }

    /// The view that owns relation `rel`, if any.
    pub fn view_of_rel(&self, rel: RelId) -> Option<&ViewDef> {
        self.views.iter().find(|v| v.rels.contains(&rel))
    }

    /// Structural validation: relation sets are disjoint and cover the
    /// environment; every predicate references only columns available at
    /// its level; aggregate references resolve to declared aggregates.
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        // Relation partition.
        let mut seen = 0u64;
        for v in &self.views {
            for r in &v.rels {
                self.env.table_of(*r)?;
                if seen & r.bit() != 0 {
                    return Err(AggViewError::Plan(format!(
                        "relation {r} appears in more than one block"
                    )));
                }
                seen |= r.bit();
            }
            if v.rels.is_empty() {
                return Err(AggViewError::Plan(format!(
                    "view Q{} has no relations",
                    v.index + 1
                )));
            }
        }
        for r in &self.base_rels {
            self.env.table_of(*r)?;
            if seen & r.bit() != 0 {
                return Err(AggViewError::Plan(format!(
                    "relation {r} appears in more than one block"
                )));
            }
            seen |= r.bit();
        }
        if self.views.is_empty() && self.base_rels.is_empty() {
            return Err(AggViewError::Plan("query has no relations".into()));
        }

        // View indexes must match positions.
        for (i, v) in self.views.iter().enumerate() {
            if v.index as usize != i {
                return Err(AggViewError::Plan(format!(
                    "view at position {i} declares index {}",
                    v.index
                )));
            }
        }

        // Column availability within views.
        for v in &self.views {
            let avail = self.base_cols_of(&v.rels, catalog)?;
            for p in &v.preds {
                if p.uses_agg() {
                    return Err(AggViewError::Plan(format!(
                        "view Q{} WHERE predicate `{p}` references an aggregate",
                        v.index + 1
                    )));
                }
                check_cols(&p.cols_used(), &avail, &format!("view Q{}", v.index + 1))?;
            }
            for g in &v.group_cols {
                if !avail.contains(g) {
                    return Err(AggViewError::Plan(format!(
                        "view Q{} groups on unavailable column {g}",
                        v.index + 1
                    )));
                }
            }
            for a in &v.aggs {
                check_cols(&a.cols_used(), &avail, &format!("view Q{}", v.index + 1))?;
            }
            // View HAVING sees group cols + own aggs.
            let mut havail: BTreeSet<Col> = v.group_cols.iter().copied().collect();
            havail.extend((0..v.aggs.len()).map(|i| Col::agg(v.id(), i)));
            for h in &v.having {
                check_cols(
                    &h.cols_used(),
                    &havail,
                    &format!("view Q{} HAVING", v.index + 1),
                )?;
            }
        }

        // Outer block: base columns of base rels + exported view columns.
        let mut outer: BTreeSet<Col> = self.base_cols_of(&self.base_rels, catalog)?;
        for v in &self.views {
            outer.extend(v.exported_cols());
        }
        for p in &self.preds {
            check_cols(&p.cols_used(), &outer, "outer block")?;
        }
        // Top group-by / projection.
        match &self.group {
            Some(g) => {
                for c in &g.group_cols {
                    if !outer.contains(c) {
                        return Err(AggViewError::Plan(format!(
                            "G0 groups on unavailable column {c}"
                        )));
                    }
                }
                for a in &g.aggs {
                    check_cols(&a.cols_used(), &outer, "G0 aggregates")?;
                }
                let mut havail: BTreeSet<Col> = g.group_cols.iter().copied().collect();
                havail.extend((0..g.aggs.len()).map(|i| Col::agg(ViewId::Top, i)));
                for h in &g.having {
                    check_cols(&h.cols_used(), &havail, "G0 HAVING")?;
                }
                // SQL semantics: projection ⊆ grouping cols ∪ aggregates.
                for c in &self.projection {
                    if !havail.contains(c) {
                        return Err(AggViewError::Plan(format!(
                            "projection column {c} is neither grouped nor aggregated"
                        )));
                    }
                }
            }
            None => {
                for c in &self.projection {
                    if !outer.contains(c) {
                        return Err(AggViewError::Plan(format!(
                            "projection references unavailable column {c}"
                        )));
                    }
                }
            }
        }
        if self.projection.is_empty() {
            return Err(AggViewError::Plan("query projects no columns".into()));
        }
        Ok(())
    }

    fn base_cols_of(&self, rels: &[RelId], catalog: &Catalog) -> Result<BTreeSet<Col>> {
        let mut avail = BTreeSet::new();
        for r in rels {
            let t = catalog.get(self.env.table_of(*r)?)?;
            for c in 0..t.schema().len() {
                avail.insert(Col::base(*r, c));
            }
        }
        Ok(avail)
    }

    /// Outer-block predicates partitioned into (those referencing any
    /// aggregate output of view `v`, the rest). The first set is what
    /// pull-up must defer into a HAVING clause.
    pub fn preds_on_view_aggs(&self, view: ViewId) -> (Vec<Predicate>, Vec<Predicate>) {
        self.preds.iter().cloned().partition(|p| {
            p.cols_used()
                .iter()
                .any(|c| matches!(c.as_agg(), Some(a) if a.owner == view))
        })
    }
}

impl fmt::Display for CanonicalQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "query {{")?;
        for v in &self.views {
            let rels: Vec<String> = v.rels.iter().map(|r| r.to_string()).collect();
            writeln!(f, "  view Q{}: rels [{}]", v.index + 1, rels.join(", "))?;
        }
        let base: Vec<String> = self.base_rels.iter().map(|r| r.to_string()).collect();
        writeln!(f, "  base [{}]", base.join(", "))?;
        for p in &self.preds {
            writeln!(f, "  where {p}")?;
        }
        if let Some(g) = &self.group {
            let gs: Vec<String> = g.group_cols.iter().map(|c| c.to_string()).collect();
            writeln!(f, "  group by [{}]", gs.join(", "))?;
        }
        write!(f, "}}")
    }
}

fn check_cols(used: &BTreeSet<Col>, avail: &BTreeSet<Col>, ctx: &str) -> Result<()> {
    for c in used {
        if !avail.contains(c) {
            return Err(AggViewError::Plan(format!(
                "{ctx} references unavailable column {c}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::examples::{example1_query, example2_query};
    use aggview_common::{AggFunc, CmpOp, Expr, Value};
    use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

    fn catalog() -> Catalog {
        gen_empdept(&EmpDeptConfig {
            n_depts: 5,
            emps_per_dept: 4,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn example1_is_valid_canonical_form() {
        let cat = catalog();
        let q = example1_query();
        q.validate(&cat).unwrap();
        assert_eq!(q.views.len(), 1);
        assert_eq!(q.base_rels.len(), 1);
        assert_eq!(q.all_rels().len(), 2);
    }

    #[test]
    fn example2_is_valid_canonical_form() {
        let cat = catalog();
        let q = example2_query();
        q.validate(&cat).unwrap();
        assert!(q.group.is_some());
        assert!(q.views.is_empty());
    }

    #[test]
    fn preds_on_view_aggs_partitions() {
        let q = example1_query();
        let (on_agg, rest) = q.preds_on_view_aggs(ViewId::View(0));
        // e1.sal > Q1.Asal is the only aggregate-referencing predicate.
        assert_eq!(on_agg.len(), 1);
        assert!(on_agg[0].uses_agg());
        assert!(rest.iter().all(|p| !p.uses_agg()));
    }

    #[test]
    fn duplicate_relation_across_blocks_rejected() {
        let cat = catalog();
        let mut q = example1_query();
        // Make the base block claim the view's relation too.
        let stolen = q.views[0].rels[0];
        q.base_rels.push(stolen);
        let err = q.validate(&cat).unwrap_err();
        assert!(err.message().contains("more than one block"));
    }

    #[test]
    fn view_where_may_not_reference_aggregates() {
        let cat = catalog();
        let mut q = example1_query();
        q.views[0].preds.push(Predicate::new(
            Expr::col(Col::agg(ViewId::View(0), 0)),
            CmpOp::Gt,
            Expr::val(Value::Int(0)),
        ));
        assert!(q.validate(&cat).is_err());
    }

    #[test]
    fn projection_must_be_grouped_or_aggregated_under_g0() {
        let cat = catalog();
        let mut q = example2_query();
        // Project dept.budget which is neither grouped nor aggregated.
        q.projection.push(Col::base(RelId(1), 2));
        let err = q.validate(&cat).unwrap_err();
        assert!(err.message().contains("neither grouped nor aggregated"));
    }

    #[test]
    fn empty_query_rejected() {
        let cat = catalog();
        let q = CanonicalQuery {
            env: QueryEnv::default(),
            views: vec![],
            base_rels: vec![],
            preds: vec![],
            group: None,
            projection: vec![],
        };
        assert!(q.validate(&cat).is_err());
    }

    #[test]
    fn env_add_rel_assigns_sequential_ids() {
        let mut env = QueryEnv::default();
        assert_eq!(env.add_rel("emp"), RelId(0));
        assert_eq!(env.add_rel("dept"), RelId(1));
        assert_eq!(env.table_of(RelId(1)).unwrap(), "dept");
        assert!(env.table_of(RelId(9)).is_err());
        assert_eq!(env.len(), 2);
    }

    #[test]
    fn display_summarizes_blocks() {
        let s = example1_query().to_string();
        assert!(s.contains("view Q1"));
        assert!(s.contains("base"));
    }

    #[test]
    fn view_exports_group_cols_then_aggs() {
        let q = example1_query();
        let exported = q.views[0].exported_cols();
        assert_eq!(exported[0].as_base().unwrap().rel, q.views[0].rels[0]);
        assert!(exported[1].is_agg());
    }

    #[test]
    fn misnumbered_view_rejected() {
        let cat = catalog();
        let mut q = example1_query();
        q.views[0].index = 3;
        assert!(q.validate(&cat).is_err());
    }

    #[test]
    fn example1_agg_is_avg_sal() {
        let q = example1_query();
        assert_eq!(q.views[0].aggs[0].func, AggFunc::Avg);
    }
}

pub mod examples {
    //! The paper's worked examples as canonical queries, bound against
    //! the [`aggview_storage::datagen::empdept`] schema:
    //! `emp(eno, name, dno, sal, age)`, `dept(dno, dname, budget, loc)`.

    use super::*;
    use aggview_common::{AggFunc, AggSpec, CmpOp, Expr, Value};

    /// Column ordinals of the generated `emp` table.
    pub mod emp {
        pub const ENO: usize = 0;
        pub const NAME: usize = 1;
        pub const DNO: usize = 2;
        pub const SAL: usize = 3;
        pub const AGE: usize = 4;
    }

    /// Column ordinals of the generated `dept` table.
    pub mod dept {
        pub const DNO: usize = 0;
        pub const DNAME: usize = 1;
        pub const BUDGET: usize = 2;
        pub const LOC: usize = 3;
    }

    /// Paper Example 1 — employees below 22 earning more than their
    /// department's average salary:
    ///
    /// ```sql
    /// A1(dno, Asal) AS select e2.dno, avg(e2.sal) from emp e2 group by e2.dno
    /// select e1.sal from emp e1, A1 b
    ///  where e1.dno = b.dno and e1.age < 22 and e1.sal > b.Asal
    /// ```
    ///
    /// Relations: `r0` = emp e1 (base), `r1` = emp e2 (inside the view).
    pub fn example1_query() -> CanonicalQuery {
        let mut env = QueryEnv::default();
        let e1 = env.add_rel("emp"); // r0: outer emp
        let e2 = env.add_rel("emp"); // r1: view emp
        let view = ViewDef {
            index: 0,
            rels: vec![e2],
            preds: vec![],
            group_cols: vec![Col::base(e2, emp::DNO)],
            aggs: vec![AggSpec::new(
                AggFunc::Avg,
                Expr::col(Col::base(e2, emp::SAL)),
            )],
            having: vec![],
        };
        let asal = Col::agg(ViewId::View(0), 0);
        CanonicalQuery {
            env,
            views: vec![view],
            base_rels: vec![e1],
            preds: vec![
                Predicate::eq_cols(Col::base(e1, emp::DNO), Col::base(e2, emp::DNO)),
                Predicate::cmp_const(Col::base(e1, emp::AGE), CmpOp::Lt, Value::Int(22)),
                Predicate::new(
                    Expr::col(Col::base(e1, emp::SAL)),
                    CmpOp::Gt,
                    Expr::col(asal),
                ),
            ],
            group: None,
            projection: vec![Col::base(e1, emp::SAL)],
        }
    }

    /// A wide-output variant of Example 2 — average salary per
    /// department, carrying the department's descriptive columns:
    ///
    /// ```sql
    /// select e.dno, d.dname, d.loc, d.budget, avg(e.sal)
    ///   from emp e, dept d where e.dno = d.dno
    ///  group by e.dno, d.dname, d.loc, d.budget
    /// ```
    ///
    /// Because `d.dname/loc/budget` are functionally determined by the
    /// key join on `dno`, invariant grouping can still push the group-by
    /// below the join (grouping only by `e.dno`) — the \[YL94\]
    /// generalization. The wide grouping input makes the traditional
    /// plan's group-by expensive, which is what experiment E2 measures.
    pub fn example2_wide_query() -> CanonicalQuery {
        let mut env = QueryEnv::default();
        let e = env.add_rel("emp");
        let d = env.add_rel("dept");
        let group_cols = vec![
            Col::base(e, emp::DNO),
            Col::base(d, dept::DNAME),
            Col::base(d, dept::LOC),
            Col::base(d, dept::BUDGET),
        ];
        let mut projection = group_cols.clone();
        projection.push(Col::agg(ViewId::Top, 0));
        CanonicalQuery {
            env,
            views: vec![],
            base_rels: vec![e, d],
            preds: vec![Predicate::eq_cols(
                Col::base(e, emp::DNO),
                Col::base(d, dept::DNO),
            )],
            group: Some(TopGroup {
                group_cols,
                aggs: vec![AggSpec::new(
                    AggFunc::Avg,
                    Expr::col(Col::base(e, emp::SAL)),
                )],
                having: vec![],
            }),
            projection,
        }
    }

    /// Paper Example 2 — average salary per department with budget under
    /// one million:
    ///
    /// ```sql
    /// select e.dno, avg(e.sal) from emp e, dept d
    ///  where e.dno = d.dno and d.budget < 1000000 group by e.dno
    /// ```
    ///
    /// Relations: `r0` = emp, `r1` = dept; single-block with `G0`.
    pub fn example2_query() -> CanonicalQuery {
        let mut env = QueryEnv::default();
        let e = env.add_rel("emp");
        let d = env.add_rel("dept");
        CanonicalQuery {
            env,
            views: vec![],
            base_rels: vec![e, d],
            preds: vec![
                Predicate::eq_cols(Col::base(e, emp::DNO), Col::base(d, dept::DNO)),
                Predicate::cmp_const(
                    Col::base(d, dept::BUDGET),
                    CmpOp::Lt,
                    Value::Float(1_000_000.0),
                ),
            ],
            group: Some(TopGroup {
                group_cols: vec![Col::base(e, emp::DNO)],
                aggs: vec![AggSpec::new(
                    AggFunc::Avg,
                    Expr::col(Col::base(e, emp::SAL)),
                )],
                having: vec![],
            }),
            projection: vec![Col::base(e, emp::DNO), Col::agg(ViewId::Top, 0)],
        }
    }
}
