//! Invariant grouping (paper Section 4.1).
//!
//! The push-down transformation moves a group-by operator below a join:
//! `G(V ⋈ R) ≡ G(V) ⋈ R` when the join cannot change the content or
//! multiplicity of any group. Sufficient conditions, per removed
//! relation `R`:
//!
//! 1. `R` contributes **no grouping columns and no aggregating columns**
//!    of `G` (its role is purely to filter groups);
//! 2. every predicate linking `R` to the retained side references, on
//!    the retained side, **only grouping columns** of `G` — so all
//!    tuples of a group behave identically under the join; and
//! 3. the equality predicates linking `R` to the retained side equate a
//!    **key of `R`** — so each group matches at most one `R` tuple and
//!    no group is duplicated.
//!
//! Under 1–3 a group either survives intact (exactly once) or is
//! eliminated wholesale, which is precisely what evaluating `G` first
//! and then joining produces.
//!
//! The **minimal invariant set** `V₀` of `G(V)` (paper's definition) is
//! the fixpoint of removing removable relations: the smallest set of
//! relations that must be joined before `G` can be applied. The DP
//! enumerator asks the finer-grained question directly —
//! [`group_applicable_at`]: *may `G` be evaluated after joining exactly
//! the subset `S`?* — because removability of each remaining relation
//! depends on which relations are actually in `S`.

use crate::query::QueryEnv;
use aggview_common::{AggSpec, Col, Predicate, RelId, Result};
use aggview_storage::Catalog;
use std::collections::{BTreeMap, BTreeSet};

/// A single-block query with a group-by, described for push-down
/// analysis: `G(group_cols, aggs)(σ_preds(rels))`.
#[derive(Debug, Clone, Copy)]
pub struct InvariantGroupBy<'a> {
    /// Relations of the SPJ block `V`.
    pub rels: &'a [RelId],
    /// Conjunctive predicates of `V`.
    pub preds: &'a [Predicate],
    /// Grouping columns of `G`.
    pub group_cols: &'a [Col],
    /// Aggregate list of `G`.
    pub aggs: &'a [AggSpec],
}

impl<'a> InvariantGroupBy<'a> {
    fn rel_set(&self) -> u64 {
        self.rels.iter().map(|r| r.bit()).fold(0, |a, b| a | b)
    }
}

/// May the group-by be evaluated after joining exactly the relations in
/// `subset` (a bitset over `q.rels`), with the remaining relations
/// joined afterwards?
///
/// Checks conditions 1–3 above for every relation outside `subset`.
/// `subset` must be a non-empty subset of the block's relations and must
/// cover every grouping and aggregating column.
pub fn group_applicable_at(
    q: &InvariantGroupBy<'_>,
    subset: u64,
    env: &QueryEnv,
    catalog: &Catalog,
) -> Result<bool> {
    let all = q.rel_set();
    if subset == 0 || subset & !all != 0 {
        return Ok(false);
    }
    if subset == all {
        return Ok(true); // degenerate: group-by after all joins.
    }
    let in_subset = |r: RelId| subset & r.bit() != 0;

    // Condition 1: grouping and aggregating columns all inside `subset`.
    for c in q.group_cols {
        match c.as_base() {
            Some(b) if in_subset(b.rel) => {}
            _ => return Ok(false),
        }
    }
    for a in q.aggs {
        for c in a.cols_used() {
            match c.as_base() {
                Some(b) if in_subset(b.rel) => {}
                _ => return Ok(false),
            }
        }
    }

    let group_set: BTreeSet<Col> = q.group_cols.iter().copied().collect();
    // Equality predicates into each outside relation, for condition 3.
    let mut equated: BTreeMap<RelId, BTreeSet<usize>> = BTreeMap::new();

    // Condition 2: cross predicates touch only grouping columns on the
    // subset side.
    for p in q.preds {
        let rels_used: Vec<RelId> = p.rels_used().into_iter().collect();
        let touches_subset = rels_used.iter().any(|r| in_subset(*r));
        let touches_outside = rels_used.iter().any(|r| !in_subset(*r));
        if !(touches_subset && touches_outside) {
            continue; // fully inside (before G) or fully outside (after G)
        }
        for c in p.cols_used() {
            if let Some(b) = c.as_base() {
                if in_subset(b.rel) && !group_set.contains(&c) {
                    return Ok(false);
                }
            }
        }
        // Record key-coverage evidence from plain equalities.
        if let Some((a, b)) = p.as_col_eq_col() {
            if let (Some(x), Some(y)) = (a.as_base(), b.as_base()) {
                match (in_subset(x.rel), in_subset(y.rel)) {
                    (true, false) => {
                        equated.entry(y.rel).or_default().insert(y.col as usize);
                    }
                    (false, true) => {
                        equated.entry(x.rel).or_default().insert(x.col as usize);
                    }
                    _ => {}
                }
            }
        }
    }

    // Condition 3: every outside relation that is *connected to the
    // subset* must be joined on a full key.
    for r in q.rels.iter().filter(|r| !in_subset(**r)) {
        let connected = q.preds.iter().any(|p| {
            let rs = p.rels_used();
            rs.contains(r) && rs.iter().any(|x| in_subset(*x))
        });
        if !connected {
            // A cross product after the group-by duplicates every group
            // row once per tuple of `r` — only sound if `r` is
            // guaranteed a single tuple, which we cannot know. Reject.
            return Ok(false);
        }
        let table = catalog.get(env.table_of(*r)?)?;
        let eq = equated.get(r).cloned().unwrap_or_default();
        let eq_vec: Vec<usize> = eq.into_iter().collect();
        if !table.cols_contain_key(&eq_vec) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Compute the minimal invariant set `V₀` of the block: the fixpoint of
/// greedily removing relations that satisfy the invariant-grouping
/// conditions with respect to the currently retained set.
///
/// Returns `(V₀, removed)` — removed relations "can be treated like
/// relations in `B` and can be freely reordered" (paper Section 5.4).
pub fn minimal_invariant_set(
    q: &InvariantGroupBy<'_>,
    env: &QueryEnv,
    catalog: &Catalog,
) -> Result<(Vec<RelId>, Vec<RelId>)> {
    let mut retained = q.rel_set();
    let mut removed: Vec<RelId> = Vec::new();
    loop {
        let mut progress = false;
        for r in q.rels {
            if retained & r.bit() == 0 || retained == r.bit() {
                continue; // already removed, or last relation standing
            }
            let candidate = retained & !r.bit();
            if group_applicable_at(q, candidate, env, catalog)? {
                retained = candidate;
                removed.push(*r);
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    let v0 = q
        .rels
        .iter()
        .copied()
        .filter(|r| retained & r.bit() != 0)
        .collect();
    removed.sort_unstable();
    Ok((v0, removed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::examples::{dept, emp, example2_query};
    use aggview_common::{AggFunc, CmpOp, Expr};
    use aggview_storage::datagen::{gen_empdept, EmpDeptConfig};

    fn catalog() -> Catalog {
        gen_empdept(&EmpDeptConfig {
            n_depts: 4,
            emps_per_dept: 3,
            ..Default::default()
        })
        .unwrap()
    }

    /// Example 2: group emp⋈dept by e.dno, avg(e.sal); dept is joined on
    /// its key and contributes nothing to the group-by → minimal
    /// invariant set is {emp}.
    #[test]
    fn example2_minimal_invariant_set_is_emp() {
        let cat = catalog();
        let q = example2_query();
        let g = q.group.as_ref().unwrap();
        let igb = InvariantGroupBy {
            rels: &q.base_rels,
            preds: &q.preds,
            group_cols: &g.group_cols,
            aggs: &g.aggs,
        };
        let (v0, removed) = minimal_invariant_set(&igb, &q.env, &cat).unwrap();
        assert_eq!(v0, vec![RelId(0)], "emp retained");
        assert_eq!(removed, vec![RelId(1)], "dept removable");
        // And the DP-facing check agrees: G applicable after {emp} alone.
        assert!(group_applicable_at(&igb, RelId(0).bit(), &q.env, &cat).unwrap());
        assert!(!group_applicable_at(&igb, RelId(1).bit(), &q.env, &cat).unwrap());
        assert!(group_applicable_at(&igb, RelId(0).bit() | RelId(1).bit(), &q.env, &cat).unwrap());
    }

    /// Joining dept on a non-key column defeats condition 3.
    #[test]
    fn non_key_join_blocks_push_down() {
        let cat = catalog();
        let mut q = example2_query();
        // Replace e.dno = d.dno with e.dno = d.budget-ish comparison on
        // a non-key dept column (keep it an equality on dname—non-key).
        q.preds[0] = Predicate::eq_cols(
            Col::base(RelId(0), emp::DNO),
            Col::base(RelId(1), dept::LOC),
        );
        let g = q.group.clone().unwrap();
        let igb = InvariantGroupBy {
            rels: &q.base_rels,
            preds: &q.preds,
            group_cols: &g.group_cols,
            aggs: &g.aggs,
        };
        assert!(!group_applicable_at(&igb, RelId(0).bit(), &q.env, &cat).unwrap());
        let (v0, removed) = minimal_invariant_set(&igb, &q.env, &cat).unwrap();
        assert_eq!(v0.len(), 2);
        assert!(removed.is_empty());
    }

    /// A cross predicate touching a non-grouping retained column defeats
    /// condition 2.
    #[test]
    fn cross_predicate_on_non_group_column_blocks_push_down() {
        let cat = catalog();
        let mut q = example2_query();
        // Add e.sal > d.budget: sal is aggregated, not grouped.
        q.preds.push(Predicate::new(
            Expr::col(Col::base(RelId(0), emp::SAL)),
            CmpOp::Gt,
            Expr::col(Col::base(RelId(1), dept::BUDGET)),
        ));
        let g = q.group.clone().unwrap();
        let igb = InvariantGroupBy {
            rels: &q.base_rels,
            preds: &q.preds,
            group_cols: &g.group_cols,
            aggs: &g.aggs,
        };
        assert!(!group_applicable_at(&igb, RelId(0).bit(), &q.env, &cat).unwrap());
    }

    /// Aggregating a column of the would-be-removed relation defeats
    /// condition 1.
    #[test]
    fn aggregate_over_removed_relation_blocks_push_down() {
        let cat = catalog();
        let q = example2_query();
        let mut g = q.group.clone().unwrap();
        g.aggs = vec![aggview_common::AggSpec::new(
            AggFunc::Avg,
            Expr::col(Col::base(RelId(1), dept::BUDGET)),
        )];
        let igb = InvariantGroupBy {
            rels: &q.base_rels,
            preds: &q.preds,
            group_cols: &g.group_cols,
            aggs: &g.aggs,
        };
        assert!(!group_applicable_at(&igb, RelId(0).bit(), &q.env, &cat).unwrap());
    }

    /// Disconnected relations (cross products after the group-by) are
    /// rejected.
    #[test]
    fn disconnected_relation_blocks_push_down() {
        let cat = catalog();
        let mut q = example2_query();
        q.preds.remove(0); // drop the join predicate entirely
        let g = q.group.clone().unwrap();
        let igb = InvariantGroupBy {
            rels: &q.base_rels,
            preds: &q.preds,
            group_cols: &g.group_cols,
            aggs: &g.aggs,
        };
        assert!(!group_applicable_at(&igb, RelId(0).bit(), &q.env, &cat).unwrap());
    }

    #[test]
    fn subset_sanity() {
        let cat = catalog();
        let q = example2_query();
        let g = q.group.clone().unwrap();
        let igb = InvariantGroupBy {
            rels: &q.base_rels,
            preds: &q.preds,
            group_cols: &g.group_cols,
            aggs: &g.aggs,
        };
        // Empty subset and foreign bits are rejected.
        assert!(!group_applicable_at(&igb, 0, &q.env, &cat).unwrap());
        assert!(!group_applicable_at(&igb, 1 << 63, &q.env, &cat).unwrap());
        // Selection predicate on dept (budget < 1M) does not interfere:
        // it is evaluated on dept after the group-by.
        assert_eq!(q.preds.len(), 2);
    }

    /// Three-relation chain: emp ⋈ dept ⋈ (dept.loc = region-ish) — use
    /// random catalog tables to exercise multi-step removal.
    #[test]
    fn chain_removal_via_fixpoint() {
        let cat = catalog();
        // emp ⋈ dept on key, and a second emp-instance r2 joined to emp
        // on eno (emp's key): group by e.dno with avg(e.sal) — both dept
        // and the second emp are removable.
        let mut q = example2_query();
        let e2 = q.env.add_rel("emp");
        q.base_rels.push(e2);
        q.preds.push(Predicate::eq_cols(
            Col::base(RelId(0), emp::DNO),
            Col::base(e2, emp::DNO),
        ));
        let g = q.group.clone().unwrap();
        let igb = InvariantGroupBy {
            rels: &q.base_rels,
            preds: &q.preds,
            group_cols: &g.group_cols,
            aggs: &g.aggs,
        };
        // e2 joined on dno, which is NOT emp's key → e2 not removable;
        // dept still is.
        let (v0, removed) = minimal_invariant_set(&igb, &q.env, &cat).unwrap();
        assert!(removed.contains(&RelId(1)), "dept removed");
        assert!(v0.contains(&e2), "e2 retained (non-key join)");
    }
}
