//! Simple coalescing grouping (paper Section 4.2).
//!
//! "Instead of moving a group-by, the effect of simple coalescing is to
//! add group-by operators": a new partial group-by `G2` is placed below
//! a join while the original `G1` keeps its position, coalescing the
//! groups `G2` created. Applicability "requires that the aggregating
//! functions ... satisfy the property of being decomposable".
//!
//! Correctness sketch: `G2` groups the early side by the original
//! grouping columns (restricted to that side) *plus every column of that
//! side that later join predicates read*. All tuples of a partial group
//! therefore behave identically under all later joins: if the partial
//! row matches `k` tuples, each original tuple would have matched the
//! same `k`. Summing `k` copies of a partial SUM/COUNT state equals
//! summing the `k`-duplicated originals; MIN/MAX are duplicate-
//! insensitive; AVG and STDDEV scale numerator and denominator by the
//! same `k`. The upper `G1` merges states (the executor detects partial
//! inputs by their [`aggview_common::PartRef`] columns) and applies
//! HAVING as before.

use crate::plan::{PartialGroupSpec, Plan};
use aggview_common::{AggRef, AggSpec, Col, Predicate, RelId, ViewId};
use std::collections::BTreeSet;

/// May a partial group-by for `aggs` (owned by `owner`) be placed over
/// the relations in `subset`, given the block's predicates and the final
/// grouping columns?
///
/// Requirements:
/// * every aggregate is decomposable;
/// * every aggregate argument reads only columns of `subset` (COUNT(*)
///   qualifies trivially);
/// * `subset` is a proper, non-empty subset of the block (placing the
///   "partial" group-by over everything is just the full group-by).
pub fn coalescing_applicable(aggs: &[AggSpec], subset: u64, block_rels: u64) -> bool {
    if subset == 0 || subset & !block_rels != 0 || subset == block_rels {
        return false;
    }
    aggs.iter().all(|a| {
        a.func.is_decomposable()
            && a.cols_used().iter().all(|c| match c.as_base() {
                Some(b) => subset & b.rel.bit() != 0,
                None => false,
            })
    })
}

/// Build the partial group-by node over `input` (the plan for the early
/// side) for the final group-by `owner`/`final_group_cols`/`aggs`.
///
/// `later_pred_cols` must contain every column of the early side that
/// predicates *above* the partial group-by read (join predicates to the
/// other side, and deferred selections); they join the partial grouping
/// columns so the later joins see them.
///
/// Returns the `PartialGroupBy` plan; the caller joins it onward and
/// finally applies the unchanged `G1`, whose executor coalesces the
/// partial states.
pub fn make_coalescing_pair(
    input: Plan,
    owner: ViewId,
    final_group_cols: &[Col],
    aggs: &[AggSpec],
    later_pred_cols: &BTreeSet<Col>,
) -> Plan {
    let input_cols: BTreeSet<Col> = input.output_cols().iter().copied().collect();
    let mut group_cols: Vec<Col> = Vec::new();
    let mut seen = BTreeSet::new();
    for c in final_group_cols.iter().chain(later_pred_cols.iter()) {
        if input_cols.contains(c) && seen.insert(*c) {
            group_cols.push(*c);
        }
    }
    let spec = PartialGroupSpec {
        group_cols,
        aggs: aggs
            .iter()
            .enumerate()
            .map(|(i, a)| (AggRef::new(owner, i), a.clone()))
            .collect(),
    };
    Plan::partial_group_by_all(input, spec)
}

/// The early-side columns later predicates read: for each predicate that
/// spans `subset` and its complement, the columns on the `subset` side.
pub fn later_pred_cols(preds: &[Predicate], subset: u64) -> BTreeSet<Col> {
    let in_subset = |r: RelId| subset & r.bit() != 0;
    let mut out = BTreeSet::new();
    for p in preds {
        let rels: Vec<RelId> = p.rels_used().into_iter().collect();
        let inside = rels.iter().any(|r| in_subset(*r));
        let outside = rels.iter().any(|r| !in_subset(*r));
        if inside && outside {
            for c in p.cols_used() {
                if matches!(c.as_base(), Some(b) if in_subset(b.rel)) {
                    out.insert(c);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{all_cols, GroupBySpec};
    use aggview_common::{AggFunc, CmpOp, DataType, Expr, Schema, Value};
    use aggview_storage::{Catalog, Table};

    fn setup() -> (Catalog, Vec<String>) {
        let catalog = Catalog::new();
        catalog
            .add(
                Table::builder(
                    "emp",
                    Schema::of(&[
                        ("eno", DataType::Int),
                        ("dno", DataType::Int),
                        ("sal", DataType::Float),
                    ]),
                )
                .primary_key(&["eno"])
                .unwrap()
                .build()
                .unwrap(),
            )
            .unwrap();
        catalog
            .add(
                Table::builder(
                    "dept",
                    Schema::of(&[("dno", DataType::Int), ("budget", DataType::Float)]),
                )
                .primary_key(&["dno"])
                .unwrap()
                .build()
                .unwrap(),
            )
            .unwrap();
        (catalog, vec!["emp".into(), "dept".into()])
    }

    #[test]
    fn applicability_requires_args_inside_subset() {
        let e = RelId(0);
        let d = RelId(1);
        let both = e.bit() | d.bit();
        let sum_sal = vec![AggSpec::new(AggFunc::Sum, Expr::col(Col::base(e, 2)))];
        assert!(coalescing_applicable(&sum_sal, e.bit(), both));
        assert!(!coalescing_applicable(&sum_sal, d.bit(), both));
        // COUNT(*) may be partially computed on either side.
        let cstar = vec![AggSpec::count_star()];
        assert!(coalescing_applicable(&cstar, e.bit(), both));
        assert!(coalescing_applicable(&cstar, d.bit(), both));
        // Proper subset required.
        assert!(!coalescing_applicable(&sum_sal, both, both));
        assert!(!coalescing_applicable(&sum_sal, 0, both));
    }

    #[test]
    fn later_pred_cols_collects_subset_side() {
        let e = RelId(0);
        let d = RelId(1);
        let preds = vec![
            Predicate::eq_cols(Col::base(e, 1), Col::base(d, 0)),
            Predicate::cmp_const(Col::base(d, 1), CmpOp::Lt, Value::Float(1e6)),
            Predicate::cmp_const(Col::base(e, 2), CmpOp::Gt, Value::Float(0.0)),
        ];
        let cols = later_pred_cols(&preds, e.bit());
        // Only e.dno crosses; the dept selection and the emp selection
        // are single-sided.
        assert_eq!(cols.len(), 1);
        assert!(cols.contains(&Col::base(e, 1)));
    }

    #[test]
    fn full_coalescing_pipeline_is_legal() {
        let (cat, rels) = setup();
        let e = RelId(0);
        let d = RelId(1);
        let aggs = vec![
            AggSpec::new(AggFunc::Sum, Expr::col(Col::base(e, 2))),
            AggSpec::count_star(),
        ];
        let final_groups = vec![Col::base(e, 1)];
        let preds = vec![Predicate::eq_cols(Col::base(e, 1), Col::base(d, 0))];
        let lpc = later_pred_cols(&preds, e.bit());
        let partial = make_coalescing_pair(
            Plan::scan(e, "emp", vec![], all_cols(e, 3)),
            ViewId::Top,
            &final_groups,
            &aggs,
            &lpc,
        );
        // Partial grouping cols: e.dno once (group col == join col here).
        let Plan::PartialGroupBy { spec, .. } = &partial else {
            panic!("partial expected")
        };
        assert_eq!(spec.group_cols, vec![Col::base(e, 1)]);
        assert_eq!(spec.aggs.len(), 2);

        let join = Plan::join_all(
            partial,
            Plan::scan(d, "dept", vec![], all_cols(d, 2)),
            preds,
        );
        let final_gb = Plan::group_by_all(
            join,
            GroupBySpec {
                owner: ViewId::Top,
                group_cols: final_groups,
                aggs,
                having: vec![],
            },
        );
        final_gb.validate(&cat, &rels).unwrap();
        assert_eq!(final_gb.group_by_count(), 2);
    }

    #[test]
    fn partial_group_includes_distinct_join_cols() {
        // Final grouping on e.dno but join on e.eno: partial grouping
        // must include both.
        let e = RelId(0);
        let d = RelId(1);
        let aggs = vec![AggSpec::new(AggFunc::Min, Expr::col(Col::base(e, 2)))];
        let preds = vec![Predicate::eq_cols(Col::base(e, 0), Col::base(d, 0))];
        let lpc = later_pred_cols(&preds, e.bit());
        let partial = make_coalescing_pair(
            Plan::scan(e, "emp", vec![], all_cols(e, 3)),
            ViewId::View(0),
            &[Col::base(e, 1)],
            &aggs,
            &lpc,
        );
        let Plan::PartialGroupBy { spec, .. } = &partial else {
            panic!()
        };
        assert_eq!(spec.group_cols, vec![Col::base(e, 1), Col::base(e, 0)]);
    }
}
