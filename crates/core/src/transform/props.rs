//! Key properties of operator outputs.
//!
//! Definition 1 of the paper makes the deferred group-by group on "a
//! primary key of R2", and notes the key may be omitted "in case the
//! join J1 is a foreign key join". Invariant grouping's soundness
//! likewise rests on the joined relation matching at most one tuple per
//! group. Both need to answer: *what is a key of this plan's output?*

use crate::plan::Plan;
use aggview_common::{Col, Predicate, Result};
use aggview_storage::Catalog;
use std::collections::BTreeSet;

/// A key of the plan's output: a set of output columns whose values
/// functionally determine the whole output tuple, with no duplicate
/// combinations. Returns `None` when no key can be derived from the
/// available declarations (e.g. a projection that drops the key).
///
/// Derivation rules:
/// * **Scan** — the table's primary key, if all its columns survive the
///   projection (duplicate-free because the builder enforces PK
///   uniqueness).
/// * **Join** — the union of the children's keys (a tuple of the join is
///   identified by the pair of contributing tuples), if both are
///   derivable and projected.
/// * **GroupBy** — the grouping columns (one output tuple per group), if
///   projected.
/// * **PartialGroupBy** — its grouping columns, likewise.
pub fn output_key(plan: &Plan, catalog: &Catalog) -> Result<Option<Vec<Col>>> {
    let out: BTreeSet<Col> = plan.output_cols().iter().copied().collect();
    let key = match plan {
        Plan::Scan { rel, table, .. } => {
            let t = catalog.get(table)?;
            t.primary_key()
                .map(|pk| pk.cols.iter().map(|&c| Col::base(*rel, c)).collect())
        }
        Plan::Join { left, right, .. } => {
            match (output_key(left, catalog)?, output_key(right, catalog)?) {
                (Some(mut l), Some(r)) => {
                    l.extend(r);
                    Some(l)
                }
                _ => None,
            }
        }
        Plan::GroupBy { spec, .. } => Some(spec.group_cols.clone()),
        Plan::PartialGroupBy { spec, .. } => Some(spec.group_cols.clone()),
        Plan::PartialAggregate { spec, .. } => Some(spec.group_cols.clone()),
        // Zero rows trivially satisfy any key, but claiming one would
        // let invariant-grouping reason from a vacuous property.
        Plan::EmptyScan { .. } => None,
        Plan::ExtentScan {
            table,
            cols,
            outputs,
            ..
        } => {
            // The extent table's primary key is the view's group columns;
            // expose it under the logical identities this scan maps them
            // to, provided every key column is read.
            let t = catalog.get(table)?;
            match t.primary_key() {
                Some(pk) => {
                    let mapped: Vec<Option<Col>> = pk
                        .cols
                        .iter()
                        .map(|k| cols.iter().position(|c| c == k).map(|i| outputs[i]))
                        .collect();
                    if mapped.iter().all(Option::is_some) {
                        Some(mapped.into_iter().flatten().collect())
                    } else {
                        None
                    }
                }
                None => None,
            }
        }
    };
    Ok(key.filter(|k| k.iter().all(|c| out.contains(c))))
}

/// True when `preds` equate (transitively, via simple equality
/// predicates) a full key of `keyed` with columns available on the other
/// side — i.e. the join is a key join *into* `keyed`: each tuple of the
/// other side matches at most one tuple of `keyed`.
///
/// `keyed_cols` must be the column set produced by the keyed side;
/// `key` its key.
pub fn is_fk_join_into(preds: &[Predicate], key: &[Col], keyed_cols: &BTreeSet<Col>) -> bool {
    if key.is_empty() {
        return false;
    }
    // Columns of the keyed side equated to something on the other side.
    let mut equated: BTreeSet<Col> = BTreeSet::new();
    for p in preds {
        if let Some((a, b)) = p.as_col_eq_col() {
            match (keyed_cols.contains(&a), keyed_cols.contains(&b)) {
                (true, false) => {
                    equated.insert(a);
                }
                (false, true) => {
                    equated.insert(b);
                }
                _ => {}
            }
        }
    }
    key.iter().all(|k| equated.contains(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{all_cols, GroupBySpec};
    use aggview_common::{AggFunc, AggSpec, DataType, Expr, RelId, Schema, ViewId};
    use aggview_storage::Table;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.add(
            Table::builder(
                "emp",
                Schema::of(&[
                    ("eno", DataType::Int),
                    ("dno", DataType::Int),
                    ("sal", DataType::Float),
                ]),
            )
            .primary_key(&["eno"])
            .unwrap()
            .build()
            .unwrap(),
        )
        .unwrap();
        cat.add(
            Table::builder("heap", Schema::of(&[("x", DataType::Int)]))
                .build()
                .unwrap(),
        )
        .unwrap();
        cat
    }

    #[test]
    fn scan_key_is_primary_key() {
        let cat = catalog();
        let s = Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 3));
        let k = output_key(&s, &cat).unwrap().unwrap();
        assert_eq!(k, vec![Col::base(RelId(0), 0)]);
    }

    #[test]
    fn projection_dropping_key_loses_it() {
        let cat = catalog();
        let s = Plan::scan(RelId(0), "emp", vec![], vec![Col::base(RelId(0), 2)]);
        assert!(output_key(&s, &cat).unwrap().is_none());
    }

    #[test]
    fn heap_table_has_no_key() {
        let cat = catalog();
        let s = Plan::scan(RelId(1), "heap", vec![], all_cols(RelId(1), 1));
        assert!(output_key(&s, &cat).unwrap().is_none());
    }

    #[test]
    fn join_key_is_union_of_child_keys() {
        let cat = catalog();
        let a = Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 3));
        let b = Plan::scan(RelId(2), "emp", vec![], all_cols(RelId(2), 3));
        let j = Plan::join_all(a, b, vec![]);
        let k = output_key(&j, &cat).unwrap().unwrap();
        assert_eq!(k, vec![Col::base(RelId(0), 0), Col::base(RelId(2), 0)]);
    }

    #[test]
    fn group_by_key_is_grouping_columns() {
        let cat = catalog();
        let s = Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 3));
        let g = Plan::group_by_all(
            s,
            GroupBySpec {
                owner: ViewId::View(0),
                group_cols: vec![Col::base(RelId(0), 1)],
                aggs: vec![AggSpec::new(
                    AggFunc::Avg,
                    Expr::col(Col::base(RelId(0), 2)),
                )],
                having: vec![],
            },
        );
        let k = output_key(&g, &cat).unwrap().unwrap();
        assert_eq!(k, vec![Col::base(RelId(0), 1)]);
    }

    #[test]
    fn fk_join_detection() {
        let key = vec![Col::base(RelId(1), 0)];
        let keyed_cols: BTreeSet<Col> = (0..3).map(|c| Col::base(RelId(1), c)).collect();
        let preds = vec![Predicate::eq_cols(
            Col::base(RelId(0), 1),
            Col::base(RelId(1), 0),
        )];
        assert!(is_fk_join_into(&preds, &key, &keyed_cols));
        // Join on a non-key column is not a key join.
        let preds2 = vec![Predicate::eq_cols(
            Col::base(RelId(0), 1),
            Col::base(RelId(1), 2),
        )];
        assert!(!is_fk_join_into(&preds2, &key, &keyed_cols));
        // Empty key set never qualifies.
        assert!(!is_fk_join_into(&preds, &[], &keyed_cols));
    }

    #[test]
    fn composite_key_needs_all_columns_equated() {
        let key = vec![Col::base(RelId(1), 0), Col::base(RelId(1), 1)];
        let keyed_cols: BTreeSet<Col> = (0..3).map(|c| Col::base(RelId(1), c)).collect();
        let one = vec![Predicate::eq_cols(
            Col::base(RelId(0), 0),
            Col::base(RelId(1), 0),
        )];
        assert!(!is_fk_join_into(&one, &key, &keyed_cols));
        let both = vec![
            Predicate::eq_cols(Col::base(RelId(0), 0), Col::base(RelId(1), 0)),
            Predicate::eq_cols(Col::base(RelId(0), 1), Col::base(RelId(1), 1)),
        ];
        assert!(is_fk_join_into(&both, &key, &keyed_cols));
    }
}
