//! Combining successive group-by operators (paper Section 3).
//!
//! "Successive group-by operators can arise in the transformed query if
//! the original query has a group-by on an aggregate view or, if the
//! query is a join between two aggregate views. Execution of such
//! successive group-by operators can be combined under many
//! circumstances."
//!
//! This module implements the safe circumstances for an *adjacent* pair
//! `G_outer(G_inner(X))`:
//!
//! * the outer grouping columns are a subset of the inner grouping
//!   columns (outer groups coarsen inner groups);
//! * the inner operator has no HAVING clause (its filter would be lost);
//! * every outer aggregate re-aggregates an inner aggregate with a
//!   collapsible function pair — `MIN∘MIN = MIN`, `MAX∘MAX = MAX`,
//!   `SUM∘SUM = SUM`, `SUM∘COUNT = COUNT` — over the same argument.
//!
//! Outer aggregates over inner *grouping columns* (e.g. `COUNT(*)`
//! counting groups, or `AVG` of per-group averages) do **not** collapse:
//! their value depends on the inner grouping structure itself.
//!
//! The combined operator keeps the *outer* identity, so references to
//! `Col::Agg(outer, i)` above the pair remain valid.

use crate::plan::{GroupBySpec, Plan};
use aggview_common::{AggFunc, AggSpec, Col, Expr};

/// If `plan` is a group-by directly over another group-by and the pair
/// is collapsible, return the single combined group-by; else `None`.
pub fn combine_groupbys(plan: &Plan) -> Option<Plan> {
    let Plan::GroupBy {
        input: outer_input,
        spec: outer,
        project,
        algo,
    } = plan
    else {
        return None;
    };
    let Plan::GroupBy {
        input: inner_input,
        spec: inner,
        ..
    } = outer_input.as_ref()
    else {
        return None;
    };
    if !inner.having.is_empty() {
        return None;
    }
    // Outer groups must coarsen inner groups.
    if !outer
        .group_cols
        .iter()
        .all(|c| inner.group_cols.contains(c))
    {
        return None;
    }
    // Rewrite each outer aggregate against the inner input.
    let mut combined_aggs = Vec::with_capacity(outer.aggs.len());
    for a in &outer.aggs {
        let arg = a.arg.as_ref()?;
        let Expr::Col(Col::Agg(inner_ref)) = arg else {
            return None; // outer aggregates a grouping column: keep split
        };
        if inner_ref.owner != inner.owner {
            return None;
        }
        let inner_spec = inner.aggs.get(inner_ref.idx as usize)?;
        let combined_func = match (a.func, inner_spec.func) {
            (AggFunc::Min, AggFunc::Min) => AggFunc::Min,
            (AggFunc::Max, AggFunc::Max) => AggFunc::Max,
            (AggFunc::Sum, AggFunc::Sum) => AggFunc::Sum,
            (AggFunc::Sum, AggFunc::Count) => AggFunc::Count,
            _ => return None,
        };
        combined_aggs.push(AggSpec {
            func: combined_func,
            arg: inner_spec.arg.clone(),
        });
    }
    let spec = GroupBySpec {
        owner: outer.owner,
        group_cols: outer.group_cols.clone(),
        aggs: combined_aggs,
        having: outer.having.clone(),
    };
    Some(Plan::GroupBy {
        algo: *algo,
        input: inner_input.clone(),
        spec,
        project: project.clone(),
    })
}

/// Apply [`combine_groupbys`] everywhere in the tree, bottom-up, until a
/// fixpoint.
pub fn combine_all(plan: &Plan) -> Plan {
    let rebuilt = match plan {
        Plan::Scan { .. } | Plan::ExtentScan { .. } | Plan::EmptyScan { .. } => plan.clone(),
        Plan::Join {
            algo,
            left,
            right,
            preds,
            project,
        } => Plan::Join {
            algo: *algo,
            left: Box::new(combine_all(left)),
            right: Box::new(combine_all(right)),
            preds: preds.clone(),
            project: project.clone(),
        },
        Plan::GroupBy {
            algo,
            input,
            spec,
            project,
        } => Plan::GroupBy {
            algo: *algo,
            input: Box::new(combine_all(input)),
            spec: spec.clone(),
            project: project.clone(),
        },
        Plan::PartialGroupBy {
            algo,
            input,
            spec,
            project,
        } => Plan::PartialGroupBy {
            algo: *algo,
            input: Box::new(combine_all(input)),
            spec: spec.clone(),
            project: project.clone(),
        },
        Plan::PartialAggregate {
            algo,
            input,
            spec,
            project,
        } => Plan::PartialAggregate {
            algo: *algo,
            input: Box::new(combine_all(input)),
            spec: spec.clone(),
            project: project.clone(),
        },
    };
    match combine_groupbys(&rebuilt) {
        Some(combined) => combine_all(&combined),
        None => rebuilt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::all_cols;
    use aggview_common::{CmpOp, Predicate, RelId, Value, ViewId};

    /// inner: SUM(val) by (j1, j2); outer: SUM of that by j1.
    fn stacked(outer_func: AggFunc, inner_func: AggFunc, having_inner: bool) -> Plan {
        let r = RelId(0);
        let inner = GroupBySpec {
            owner: ViewId::View(0),
            group_cols: vec![Col::base(r, 1), Col::base(r, 2)],
            aggs: vec![AggSpec {
                func: inner_func,
                arg: Some(Expr::col(Col::base(r, 3))),
            }],
            having: if having_inner {
                vec![Predicate::new(
                    Expr::col(Col::agg(ViewId::View(0), 0)),
                    CmpOp::Gt,
                    Expr::val(Value::Int(0)),
                )]
            } else {
                vec![]
            },
        };
        let outer = GroupBySpec {
            owner: ViewId::Top,
            group_cols: vec![Col::base(r, 1)],
            aggs: vec![AggSpec {
                func: outer_func,
                arg: Some(Expr::col(Col::agg(ViewId::View(0), 0))),
            }],
            having: vec![],
        };
        Plan::group_by_all(
            Plan::group_by_all(Plan::scan(r, "t0", vec![], all_cols(r, 4)), inner),
            outer,
        )
    }

    #[test]
    fn sum_of_sum_collapses() {
        let p = stacked(AggFunc::Sum, AggFunc::Sum, false);
        let c = combine_groupbys(&p).expect("collapsible");
        let Plan::GroupBy { spec, input, .. } = &c else {
            panic!()
        };
        assert_eq!(spec.owner, ViewId::Top);
        assert_eq!(spec.aggs[0].func, AggFunc::Sum);
        assert!(matches!(input.as_ref(), Plan::Scan { .. }));
        assert_eq!(c.group_by_count(), 1);
    }

    #[test]
    fn sum_of_count_becomes_count() {
        let p = stacked(AggFunc::Sum, AggFunc::Count, false);
        let c = combine_groupbys(&p).unwrap();
        let Plan::GroupBy { spec, .. } = &c else {
            panic!()
        };
        assert_eq!(spec.aggs[0].func, AggFunc::Count);
    }

    #[test]
    fn min_min_and_max_max_collapse() {
        for f in [AggFunc::Min, AggFunc::Max] {
            let c = combine_groupbys(&stacked(f, f, false)).unwrap();
            let Plan::GroupBy { spec, .. } = &c else {
                panic!()
            };
            assert_eq!(spec.aggs[0].func, f);
        }
    }

    #[test]
    fn avg_of_avg_does_not_collapse() {
        assert!(combine_groupbys(&stacked(AggFunc::Avg, AggFunc::Avg, false)).is_none());
        assert!(combine_groupbys(&stacked(AggFunc::Sum, AggFunc::Avg, false)).is_none());
        assert!(combine_groupbys(&stacked(AggFunc::Min, AggFunc::Max, false)).is_none());
    }

    #[test]
    fn inner_having_blocks_combination() {
        assert!(combine_groupbys(&stacked(AggFunc::Sum, AggFunc::Sum, true)).is_none());
    }

    #[test]
    fn non_subset_grouping_blocks_combination() {
        // Outer groups by a column the inner did not group by.
        let r = RelId(0);
        let inner = GroupBySpec {
            owner: ViewId::View(0),
            group_cols: vec![Col::base(r, 1)],
            aggs: vec![AggSpec::new(AggFunc::Sum, Expr::col(Col::base(r, 3)))],
            having: vec![],
        };
        let p = Plan::group_by_all(
            Plan::group_by_all(Plan::scan(r, "t0", vec![], all_cols(r, 4)), inner),
            GroupBySpec {
                owner: ViewId::Top,
                group_cols: vec![Col::base(r, 2)],
                aggs: vec![],
                having: vec![],
            },
        );
        // (also invalid as a plan — c2 not produced — but combine must
        // simply decline, not panic)
        assert!(combine_groupbys(&p).is_none());
    }

    #[test]
    fn combine_all_reaches_fixpoint() {
        let p = stacked(AggFunc::Sum, AggFunc::Sum, false);
        let c = combine_all(&p);
        assert_eq!(c.group_by_count(), 1);
        // Idempotent.
        assert_eq!(combine_all(&c), c);
    }

    #[test]
    fn non_adjacent_groupbys_untouched() {
        let p = stacked(AggFunc::Avg, AggFunc::Avg, false);
        let c = combine_all(&p);
        assert_eq!(c.group_by_count(), 2);
    }
}
