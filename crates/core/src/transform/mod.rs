//! The paper's plan transformations.
//!
//! * [`props`] — key derivation for operator outputs (pull-up and
//!   invariant grouping both reason about keys),
//! * [`pullup`] — Section 3's pull-up transformation (Definition 1):
//!   defer a group-by past a join,
//! * [`pushdown`] — Section 4.1's invariant grouping: move a group-by
//!   below a join, and the *minimal invariant set* computation,
//! * [`coalesce`] — Section 4.2's simple coalescing grouping: add a
//!   partial group-by below a join for decomposable aggregates,
//! * [`combine`] — Section 3's note on merging *successive* group-by
//!   operators (e.g. after a full pull-up stacks `G0` over a deferred
//!   view group-by).
//!
//! None of these is universally beneficial (the paper's Section 3 lists
//! advantages and disadvantages of each); they define the expanded
//! execution space that [`crate::optimizer`] searches cost-based.

pub mod coalesce;
pub mod combine;
pub mod props;
pub mod pullup;
pub mod pushdown;

pub use coalesce::{coalescing_applicable, make_coalescing_pair};
pub use combine::{combine_all, combine_groupbys};
pub use props::{is_fk_join_into, output_key};
pub use pullup::pull_up;
pub use pushdown::{group_applicable_at, minimal_invariant_set, InvariantGroupBy};
