//! The pull-up transformation (paper Section 3, Definition 1).
//!
//! Given a legal operator tree `P1 = J1(G1(V), R2)`, produce the
//! equivalent tree `P2 = G2(J2(V, R2))`, deferring the group-by past the
//! join:
//!
//! 1. the projection columns of `G2` are those of `J1`;
//! 2. the grouping columns of `G2` are the union of `G1`'s grouping
//!    columns, `J1`'s projection columns (except aggregated columns of
//!    `G1`), and a primary key of `R2`;
//! 3. `G1`'s aggregating columns survive as aggregating columns of `G2`;
//! 4. join predicates of `J1` involving aggregated columns of `G1`
//!    become HAVING predicates of `G2`;
//! 5. the remaining join predicates of `J1` become `J2`'s predicates.
//!
//! When `J1` is a foreign-key join into `R2` (its predicates equate a
//! full key of `R2`), the key columns need not be added to `G2`'s
//! grouping columns — they are functionally determined by `G1`'s
//! grouping columns.
//!
//! **Why this is correct** (the paper's Section 3 argument): `G1`'s
//! output exposes only grouping columns and aggregates, so every
//! *non-aggregate* join predicate depends only on grouping-column values.
//! After deferral, a `(g, key(R2))` group of `J2`'s output therefore
//! contains either *all* tuples of `V`'s group `g` (each paired with the
//! same `R2` tuple) or none — aggregates computed per `(g, key(R2))`
//! group equal those computed per `g` group, and deferred predicates
//! filter `(g, key(R2))` combinations exactly as `J1` filtered
//! `(G1-row, R2-row)` pairs.

use crate::plan::{GroupBySpec, Plan};
use crate::transform::props::{is_fk_join_into, output_key};
use aggview_common::{AggViewError, Col, Predicate, Result};
use aggview_storage::Catalog;
use std::collections::BTreeSet;

/// Apply pull-up to a join node whose left or right child is a group-by.
///
/// Returns the transformed plan `G2(J2(V, R2))`. Errors if the node is
/// not a join over a group-by, or if no key of the other side can be
/// derived (the paper's fallback — the internal tuple id — corresponds
/// to declaring a primary key in this engine).
pub fn pull_up(plan: &Plan, catalog: &Catalog) -> Result<Plan> {
    let Plan::Join {
        left,
        right,
        preds,
        project,
        ..
    } = plan
    else {
        return Err(AggViewError::Plan("pull-up applies to a join node".into()));
    };
    // Normalize: the group-by child becomes `gb`, the other child `other`.
    let (gb, other, gb_on_left) = match (left.as_ref(), right.as_ref()) {
        (Plan::GroupBy { .. }, _) => (left.as_ref(), right.as_ref(), true),
        (_, Plan::GroupBy { .. }) => (right.as_ref(), left.as_ref(), false),
        _ => {
            return Err(AggViewError::Plan(
                "pull-up needs a group-by child under the join".into(),
            ))
        }
    };
    let Plan::GroupBy {
        input: v_plan,
        spec: g1,
        project: gb_project,
        ..
    } = gb
    else {
        unreachable!("matched above");
    };

    // (4)/(5): split J1's predicates on whether they read G1's aggregates.
    let reads_g1_agg = |p: &Predicate| {
        p.cols_used()
            .iter()
            .any(|c| matches!(c.as_agg(), Some(a) if a.owner == g1.owner))
    };
    let (deferred, kept): (Vec<Predicate>, Vec<Predicate>) =
        preds.iter().cloned().partition(reads_g1_agg);

    // Key of R2 (paper: use the declared primary key; our tables may
    // also derive keys through joins/group-bys).
    let other_cols: BTreeSet<Col> = other.output_cols().iter().copied().collect();
    let r2_key = output_key(other, catalog)?.ok_or_else(|| {
        AggViewError::Plan("pull-up requires a derivable key for the non-aggregated side".into())
    })?;
    let fk_join = is_fk_join_into(&kept, &r2_key, &other_cols);

    // (2): grouping columns of G2.
    let g1_aggs: BTreeSet<Col> = g1.agg_cols().into_iter().collect();
    let mut group_cols: Vec<Col> = Vec::new();
    let mut seen: BTreeSet<Col> = BTreeSet::new();
    let add_group = |c: Col, seen: &mut BTreeSet<Col>, out: &mut Vec<Col>| {
        if seen.insert(c) {
            out.push(c);
        }
    };
    for &c in &g1.group_cols {
        add_group(c, &mut seen, &mut group_cols);
    }
    for &c in project.iter() {
        if !g1_aggs.contains(&c) {
            add_group(c, &mut seen, &mut group_cols);
        }
    }
    if !fk_join {
        for &c in &r2_key {
            add_group(c, &mut seen, &mut group_cols);
        }
    }
    // Columns the deferred predicates read from the R2 side (legal in P1
    // because they were join-predicate operands; must become grouping
    // columns of G2 — they are functionally determined by key(R2)).
    for p in &deferred {
        for c in p.cols_used() {
            if other_cols.contains(&c) {
                add_group(c, &mut seen, &mut group_cols);
            }
        }
    }

    // J2's projection: everything G2 consumes.
    let v_cols: BTreeSet<Col> = v_plan.output_cols().iter().copied().collect();
    let mut j2_needed: BTreeSet<Col> = group_cols.iter().copied().collect();
    for a in &g1.aggs {
        j2_needed.extend(a.cols_used());
    }
    for p in deferred.iter().chain(&g1.having) {
        for c in p.cols_used() {
            if !g1_aggs.contains(&c) {
                j2_needed.insert(c);
            }
        }
    }
    for c in &j2_needed {
        if !v_cols.contains(c) && !other_cols.contains(c) {
            return Err(AggViewError::Plan(format!(
                "pull-up needs column {c}, unavailable below the join"
            )));
        }
    }
    let j2_project: Vec<Col> = j2_needed.into_iter().collect();

    // (5): J2 with the kept predicates, preserving child order.
    let j2 = if gb_on_left {
        Plan::join((**v_plan).clone(), other.clone(), kept, j2_project)
    } else {
        Plan::join(other.clone(), (**v_plan).clone(), kept, j2_project)
    };

    // G2: same owner (aggregate identities survive), original HAVING plus
    // the deferred predicates.
    let mut having = g1.having.clone();
    having.extend(deferred);
    let g2 = GroupBySpec {
        owner: g1.owner,
        group_cols,
        aggs: g1.aggs.clone(),
        having,
    };
    // (1): G2 projects what J1 projected.
    let _ = gb_project; // G1's own projection is subsumed by J1's.
    let out = Plan::group_by(j2, g2, project.clone());
    // Debug-mode post-condition: the transformed tree must satisfy the
    // structural invariants (typed schema, coalescing, key joins).
    #[cfg(debug_assertions)]
    {
        let report = crate::analyze::PlanAnalyzer::new(catalog).analyze(&out);
        debug_assert!(
            report.is_ok(),
            "pull-up produced a plan violating integrity invariants:\n{report}{}",
            out.explain()
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::all_cols;
    use crate::query::examples::{dept, emp};
    use aggview_common::{AggFunc, AggSpec, CmpOp, DataType, Expr, RelId, Schema, Value, ViewId};
    use aggview_storage::Table;

    /// Build the paper's Example 1 as plan P1:
    /// J1( G1(emp e2 by dno, avg(sal)), emp e1 filtered age<22 )
    fn example1_p1() -> (Catalog, Vec<String>, Plan) {
        let catalog = Catalog::new();
        catalog
            .add(
                Table::builder(
                    "emp",
                    Schema::of(&[
                        ("eno", DataType::Int),
                        ("name", DataType::Str),
                        ("dno", DataType::Int),
                        ("sal", DataType::Float),
                        ("age", DataType::Int),
                    ]),
                )
                .primary_key(&["eno"])
                .unwrap()
                .build()
                .unwrap(),
            )
            .unwrap();
        let rel_tables = vec!["emp".to_string(), "emp".to_string()];
        let e1 = RelId(0);
        let e2 = RelId(1);
        let g1 = GroupBySpec {
            owner: ViewId::View(0),
            group_cols: vec![Col::base(e2, emp::DNO)],
            aggs: vec![AggSpec::new(
                AggFunc::Avg,
                Expr::col(Col::base(e2, emp::SAL)),
            )],
            having: vec![],
        };
        let view = Plan::group_by_all(
            Plan::scan(
                e2,
                "emp",
                vec![],
                vec![Col::base(e2, emp::DNO), Col::base(e2, emp::SAL)],
            ),
            g1,
        );
        let outer = Plan::scan(
            e1,
            "emp",
            vec![Predicate::cmp_const(
                Col::base(e1, emp::AGE),
                CmpOp::Lt,
                Value::Int(22),
            )],
            vec![
                Col::base(e1, emp::ENO),
                Col::base(e1, emp::DNO),
                Col::base(e1, emp::SAL),
            ],
        );
        let asal = Col::agg(ViewId::View(0), 0);
        let join = Plan::join(
            view,
            outer,
            vec![
                Predicate::eq_cols(Col::base(e2, emp::DNO), Col::base(e1, emp::DNO)),
                Predicate::new(
                    Expr::col(Col::base(e1, emp::SAL)),
                    CmpOp::Gt,
                    Expr::col(asal),
                ),
            ],
            vec![Col::base(e1, emp::SAL)],
        );
        (catalog, rel_tables, join)
    }

    #[test]
    fn example1_pull_up_produces_query_b_shape() {
        let (cat, rels, p1) = example1_p1();
        p1.validate(&cat, &rels).unwrap();
        let p2 = pull_up(&p1, &cat).unwrap();
        p2.validate(&cat, &rels).unwrap();

        // P2 must be GroupBy over Join over two scans (query B's shape).
        let Plan::GroupBy {
            input,
            spec,
            project,
            ..
        } = &p2
        else {
            panic!("expected group-by root, got:\n{}", p2.explain());
        };
        assert!(matches!(input.as_ref(), Plan::Join { .. }));
        // Aggregate identity preserved.
        assert_eq!(spec.owner, ViewId::View(0));
        assert_eq!(spec.aggs.len(), 1);
        // Grouping columns: e2.dno (G1), e1.sal (J1 projection),
        // e1.eno (key of R2). The paper's query B groups by
        // "e2.dno, e1.eno, e1.sal" — exactly this set.
        let g: BTreeSet<Col> = spec.group_cols.iter().copied().collect();
        assert!(g.contains(&Col::base(RelId(1), emp::DNO)), "e2.dno");
        assert!(g.contains(&Col::base(RelId(0), emp::ENO)), "e1.eno (key)");
        assert!(g.contains(&Col::base(RelId(0), emp::SAL)), "e1.sal");
        // The aggregate comparison moved into HAVING.
        assert_eq!(spec.having.len(), 1);
        assert!(spec.having[0].uses_agg());
        // Output unchanged.
        assert_eq!(project, &[Col::base(RelId(0), emp::SAL)]);
        // The join below carries only the non-aggregate predicate.
        let Plan::Join { preds, .. } = input.as_ref() else {
            unreachable!()
        };
        assert_eq!(preds.len(), 1);
        assert!(!preds[0].uses_agg());
    }

    #[test]
    fn pull_up_requires_join_over_group_by() {
        let (cat, _, p1) = example1_p1();
        let Plan::Join { right, .. } = &p1 else {
            unreachable!()
        };
        // A bare scan is not eligible.
        assert!(pull_up(right, &cat).is_err());
        // A join of two scans is not eligible either.
        let j = Plan::join_all(
            (**right).clone(),
            {
                let e2 = RelId(1);
                Plan::scan(e2, "emp", vec![], all_cols(e2, 5))
            },
            vec![],
        );
        assert!(pull_up(&j, &cat).is_err());
    }

    #[test]
    fn pull_up_fails_without_derivable_key() {
        // R2 projection drops its primary key → no key derivable.
        let (cat, rels, p1) = example1_p1();
        let Plan::Join {
            left, right, preds, ..
        } = &p1
        else {
            unreachable!()
        };
        let keyless = (**right).clone().with_project(vec![
            Col::base(RelId(0), emp::DNO),
            Col::base(RelId(0), emp::SAL),
        ]);
        let j = Plan::Join {
            algo: crate::plan::JoinAlgo::Auto,
            left: left.clone(),
            right: Box::new(keyless),
            preds: preds.clone(),
            project: vec![Col::base(RelId(0), emp::SAL)],
        };
        j.validate(&cat, &rels).unwrap();
        let err = pull_up(&j, &cat).unwrap_err();
        assert!(err.message().contains("key"));
    }

    #[test]
    fn fk_join_omits_key_from_grouping() {
        // Join the view to dept on dept's primary key: group-by deferred
        // past a key join into dept must NOT add dept.dno redundantly
        // beyond the view's grouping column.
        let catalog = Catalog::new();
        catalog
            .add(
                Table::builder(
                    "emp",
                    Schema::of(&[
                        ("eno", DataType::Int),
                        ("name", DataType::Str),
                        ("dno", DataType::Int),
                        ("sal", DataType::Float),
                        ("age", DataType::Int),
                    ]),
                )
                .primary_key(&["eno"])
                .unwrap()
                .build()
                .unwrap(),
            )
            .unwrap();
        catalog
            .add(
                Table::builder(
                    "dept",
                    Schema::of(&[
                        ("dno", DataType::Int),
                        ("dname", DataType::Str),
                        ("budget", DataType::Float),
                        ("loc", DataType::Str),
                    ]),
                )
                .primary_key(&["dno"])
                .unwrap()
                .build()
                .unwrap(),
            )
            .unwrap();
        let rels = vec!["emp".to_string(), "dept".to_string()];
        let e = RelId(0);
        let d = RelId(1);
        let g1 = GroupBySpec {
            owner: ViewId::View(0),
            group_cols: vec![Col::base(e, emp::DNO)],
            aggs: vec![AggSpec::new(
                AggFunc::Avg,
                Expr::col(Col::base(e, emp::SAL)),
            )],
            having: vec![],
        };
        let view = Plan::group_by_all(
            Plan::scan(
                e,
                "emp",
                vec![],
                vec![Col::base(e, emp::DNO), Col::base(e, emp::SAL)],
            ),
            g1,
        );
        let dscan = Plan::scan(d, "dept", vec![], all_cols(d, 4));
        let join = Plan::join(
            view,
            dscan,
            vec![Predicate::eq_cols(
                Col::base(e, emp::DNO),
                Col::base(d, dept::DNO),
            )],
            vec![
                Col::base(e, emp::DNO),
                Col::agg(ViewId::View(0), 0),
                Col::base(d, dept::DNAME),
            ],
        );
        join.validate(&catalog, &rels).unwrap();
        let p2 = pull_up(&join, &catalog).unwrap();
        p2.validate(&catalog, &rels).unwrap();
        let Plan::GroupBy { spec, .. } = &p2 else {
            panic!("group-by root expected")
        };
        // dept.dno is a key join target → not required; dname flows in
        // via J1's projection (item 2 of Definition 1).
        let g: BTreeSet<Col> = spec.group_cols.iter().copied().collect();
        assert!(g.contains(&Col::base(e, emp::DNO)));
        assert!(g.contains(&Col::base(d, dept::DNAME)));
        assert!(!g.contains(&Col::base(d, dept::DNO)), "FK key omitted");
    }

    use std::collections::BTreeSet;
}
