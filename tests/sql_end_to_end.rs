//! End-to-end SQL tests: the paper's queries verbatim, plus
//! decision-support queries, checked against independent brute-force
//! computations over the raw tables.

use aggview::sql::Session;
use aggview::storage::datagen::{gen_empdept, gen_star, EmpDeptConfig, StarConfig};
use aggview::Value;
use std::collections::HashMap;

fn empdept_session() -> Session {
    Session::new(
        gen_empdept(&EmpDeptConfig {
            n_depts: 12,
            emps_per_dept: 15,
            young_fraction: 0.25,
            low_budget_fraction: 0.5,
            seed: 31,
        })
        .unwrap(),
    )
}

/// Brute-force: employees under 22 earning more than their department's
/// average salary.
fn expected_example1(session: &Session) -> Vec<f64> {
    let emp = session.catalog().get("emp").unwrap();
    let mut sums: HashMap<i64, (f64, usize)> = HashMap::new();
    for r in emp.rows() {
        let e = sums.entry(r.get(2).as_i64().unwrap()).or_insert((0.0, 0));
        e.0 += r.get(3).as_f64().unwrap();
        e.1 += 1;
    }
    let mut out: Vec<f64> = emp
        .rows()
        .iter()
        .filter(|r| r.get(4).as_i64().unwrap() < 22)
        .filter(|r| {
            let (s, n) = sums[&r.get(2).as_i64().unwrap()];
            r.get(3).as_f64().unwrap() > s / n as f64
        })
        .map(|r| r.get(3).as_f64().unwrap())
        .collect();
    out.sort_by(f64::total_cmp);
    out
}

fn extract_f64s(rows: &[aggview::Tuple], idx: usize) -> Vec<f64> {
    let mut out: Vec<f64> = rows.iter().map(|r| r.get(idx).as_f64().unwrap()).collect();
    out.sort_by(f64::total_cmp);
    out
}

#[test]
fn paper_example1_three_formulations_match_brute_force() {
    let mut s = empdept_session();
    let expected = expected_example1(&s);
    assert!(!expected.is_empty());

    // (A1)+(A2): the aggregate-view formulation.
    let via_view = s
        .execute(
            "create view A1(dno, Asal) as \
               select e2.dno, avg(e2.sal) from emp e2 group by e2.dno; \
             select e1.sal from emp e1, A1 b \
              where e1.dno = b.dno and e1.age < 22 and e1.sal > b.Asal;",
        )
        .unwrap();
    // (B): the paper's pulled-up single-block formulation.
    let via_b = s
        .execute(
            "select e1.sal from emp e1, emp e2 \
              where e1.dno = e2.dno and e1.age < 22 \
              group by e2.dno, e1.eno, e1.sal having e1.sal > avg(e2.sal)",
        )
        .unwrap();
    // Correlated subquery formulation (flattened by the binder).
    let via_sub = s
        .execute(
            "select e1.sal from emp e1 where e1.age < 22 and \
             e1.sal > (select avg(e2.sal) from emp e2 where e2.dno = e1.dno)",
        )
        .unwrap();

    for (name, result) in [("A1/A2", &via_view), ("B", &via_b), ("subquery", &via_sub)] {
        let got = extract_f64s(&result.rows, 0);
        assert_eq!(got.len(), expected.len(), "{name} row count");
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-9, "{name}: {g} vs {e}");
        }
    }
}

#[test]
fn paper_example2_matches_brute_force() {
    let mut s = empdept_session();
    let result = s
        .execute(
            "select e.dno, avg(e.sal) from emp e, dept d \
              where e.dno = d.dno and d.budget < 1000000 group by e.dno",
        )
        .unwrap();

    let emp = s.catalog().get("emp").unwrap();
    let dept = s.catalog().get("dept").unwrap();
    let low: std::collections::HashSet<i64> = dept
        .rows()
        .iter()
        .filter(|r| r.get(2).as_f64().unwrap() < 1_000_000.0)
        .map(|r| r.get(0).as_i64().unwrap())
        .collect();
    let mut sums: HashMap<i64, (f64, usize)> = HashMap::new();
    for r in emp.rows() {
        let dno = r.get(2).as_i64().unwrap();
        if low.contains(&dno) {
            let e = sums.entry(dno).or_insert((0.0, 0));
            e.0 += r.get(3).as_f64().unwrap();
            e.1 += 1;
        }
    }
    assert_eq!(result.rows.len(), sums.len());
    for row in &result.rows {
        let dno = row.get(0).as_i64().unwrap();
        let (sum, n) = sums[&dno];
        let avg = row.get(1).as_f64().unwrap();
        assert!((avg - sum / n as f64).abs() < 1e-9, "dept {dno}");
    }
}

#[test]
fn group_by_with_having_and_count() {
    let mut s = empdept_session();
    let result = s
        .execute("select dno, count(*) from emp group by dno having count(*) >= 15")
        .unwrap();
    // Every department has exactly 15 employees in this catalog.
    assert_eq!(result.rows.len(), 12);
    assert!(result.rows.iter().all(|r| r.get(1) == &Value::Int(15)));
}

#[test]
fn min_max_sum_stddev_against_brute_force() {
    let mut s = empdept_session();
    let result = s
        .execute(
            "select dno, min(sal), max(sal), sum(sal), stddev(sal) \
             from emp group by dno",
        )
        .unwrap();
    let emp = s.catalog().get("emp").unwrap();
    for row in &result.rows {
        let dno = row.get(0).as_i64().unwrap();
        let sals: Vec<f64> = emp
            .rows()
            .iter()
            .filter(|r| r.get(2).as_i64() == Some(dno))
            .map(|r| r.get(3).as_f64().unwrap())
            .collect();
        let mn = sals.iter().cloned().fold(f64::INFINITY, f64::min);
        let mx = sals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let sum: f64 = sals.iter().sum();
        let mean = sum / sals.len() as f64;
        let var = sals.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / sals.len() as f64;
        assert!((row.get(1).as_f64().unwrap() - mn).abs() < 1e-9);
        assert!((row.get(2).as_f64().unwrap() - mx).abs() < 1e-9);
        assert!((row.get(3).as_f64().unwrap() - sum).abs() < 1e-6);
        assert!((row.get(4).as_f64().unwrap() - var.sqrt()).abs() < 1e-6);
    }
}

#[test]
fn star_schema_revenue_per_order() {
    let mut s = Session::new(
        gen_star(&StarConfig {
            customers: 60,
            orders_per_customer: 3,
            lines_per_order: 4,
            nations: 10,
            seed: 32,
        })
        .unwrap(),
    );
    let result = s
        .execute(
            "create view order_rev(ono, rev) as \
               select l.ono, sum(l.price) from lineitem l group by l.ono; \
             select o.ono, r.rev from orders o, order_rev r \
              where o.ono = r.ono and o.status = 'returned';",
        )
        .unwrap();
    let orders = s.catalog().get("orders").unwrap();
    let lineitem = s.catalog().get("lineitem").unwrap();
    let returned: std::collections::HashSet<i64> = orders
        .rows()
        .iter()
        .filter(|r| r.get(3).as_str() == Some("returned"))
        .map(|r| r.get(0).as_i64().unwrap())
        .collect();
    let mut revs: HashMap<i64, f64> = HashMap::new();
    for r in lineitem.rows() {
        *revs.entry(r.get(1).as_i64().unwrap()).or_default() += r.get(4 - 1).as_f64().unwrap();
    }
    let expected: usize = returned.iter().filter(|o| revs.contains_key(o)).count();
    assert_eq!(result.rows.len(), expected);
    for row in &result.rows {
        let ono = row.get(0).as_i64().unwrap();
        assert!(returned.contains(&ono));
        assert!((row.get(1).as_f64().unwrap() - revs[&ono]).abs() < 1e-6);
    }
}

#[test]
fn arithmetic_predicates_work() {
    let mut s = empdept_session();
    let all = s.execute("select eno from emp").unwrap();
    let half = s
        .execute("select eno from emp where sal / 2 > 50000")
        .unwrap();
    let manual = s.execute("select eno from emp where sal > 100000").unwrap();
    assert_eq!(half.rows.len(), manual.rows.len());
    assert!(half.rows.len() < all.rows.len());
}

#[test]
fn errors_are_reported_not_panicked() {
    let mut s = empdept_session();
    for bad in [
        "select nosuch from emp",
        "select sal from nosuchtable",
        "select sal from emp where",
        "select sal, avg(sal) from emp", // ungrouped column
        "create view v as select sal from emp; select v.sal from v, v", // dup binding
    ] {
        assert!(s.execute(bad).is_err(), "{bad}");
    }
}

#[test]
fn optimizer_modes_agree_through_sql() {
    use aggview::core::OptimizerConfig;
    let sql = "create view A1(dno, Asal) as \
                 select e2.dno, avg(e2.sal) from emp e2 group by e2.dno; \
               select e1.sal from emp e1, A1 b \
                where e1.dno = b.dno and e1.age < 22 and e1.sal > b.Asal;";
    let mut rows_by_mode = Vec::new();
    for cfg in [
        OptimizerConfig::traditional(),
        OptimizerConfig::push_down_only(),
        OptimizerConfig::default(),
    ] {
        let mut s = empdept_session();
        s.config = cfg;
        let result = s.execute(sql).unwrap();
        let mut rows = extract_f64s(&result.rows, 0);
        rows.sort_by(f64::total_cmp);
        rows_by_mode.push(rows);
    }
    assert_eq!(rows_by_mode[0], rows_by_mode[1]);
    assert_eq!(rows_by_mode[0], rows_by_mode[2]);
}
