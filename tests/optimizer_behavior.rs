//! Behavioral tests for the optimizer's search-space controls and the
//! less-traveled query shapes (view HAVING, three views, non-removable
//! view relations, k-level caps).

use aggview::core::query::{CanonicalQuery, QueryEnv, ViewDef};
use aggview::core::{optimize, CostModel, OptimizerConfig, PullUpLevel};
use aggview::executor::{assert_equivalent, Engine};
use aggview::sql::Session;
use aggview::storage::datagen::{gen_empdept, gen_star, EmpDeptConfig, StarConfig};
use aggview::{AggFunc, AggSpec, CmpOp, Col, Expr, Predicate, Value, ViewId};

fn empdept() -> aggview::storage::Catalog {
    gen_empdept(&EmpDeptConfig {
        n_depts: 15,
        emps_per_dept: 12,
        young_fraction: 0.3,
        low_budget_fraction: 0.4,
        seed: 41,
    })
    .unwrap()
}

/// Example 1 plus an extra dept relation joined to the outer emp.
fn example1_with_dept() -> CanonicalQuery {
    let mut env = QueryEnv::default();
    let e1 = env.add_rel("emp");
    let e2 = env.add_rel("emp");
    let d = env.add_rel("dept");
    let view = ViewDef {
        index: 0,
        rels: vec![e2],
        preds: vec![],
        group_cols: vec![Col::base(e2, 2)],
        aggs: vec![AggSpec::new(AggFunc::Avg, Expr::col(Col::base(e2, 3)))],
        having: vec![],
    };
    CanonicalQuery {
        env,
        views: vec![view],
        base_rels: vec![e1, d],
        preds: vec![
            Predicate::eq_cols(Col::base(e1, 2), Col::base(e2, 2)),
            Predicate::eq_cols(Col::base(e1, 2), Col::base(d, 0)),
            Predicate::cmp_const(Col::base(e1, 4), CmpOp::Lt, Value::Int(22)),
            Predicate::new(
                Expr::col(Col::base(e1, 3)),
                CmpOp::Gt,
                Expr::col(Col::agg(ViewId::View(0), 0)),
            ),
        ],
        group: None,
        projection: vec![Col::base(e1, 3)],
    }
}

#[test]
fn k_level_pull_up_caps_pulled_set_size() {
    let cat = empdept();
    let q = example1_with_dept();
    for (level, cap) in [
        (PullUpLevel::Disabled, 0usize),
        (PullUpLevel::Limited(1), 1),
        (PullUpLevel::Limited(2), 2),
    ] {
        let cfg = OptimizerConfig {
            pull_up: level,
            push_down: true,
            require_shared_predicate: true,
            ..Default::default()
        };
        let opt = optimize(&q, &cat, CostModel::default(), &cfg).unwrap();
        for pulled in &opt.pulled {
            assert!(
                pulled.len() <= cap,
                "{level:?} pulled {} relations",
                pulled.len()
            );
        }
    }
}

#[test]
fn shared_predicate_gate_excludes_unconnected_relations() {
    // Add a base relation connected only to the OTHER base relation (not
    // to the view): under the gate it must never be pulled through.
    let cat = empdept();
    let mut q = example1_with_dept();
    // dept shares no predicate with the view's relation e2... it joins
    // via e1.dno. (In example1_with_dept, dept's only predicate is to
    // e1.) Force full pull-up and check dept is not pulled.
    q.preds.retain(|p| {
        // Keep everything; dept joins e1 only.
        let _ = p;
        true
    });
    let cfg = OptimizerConfig {
        pull_up: PullUpLevel::Unlimited,
        push_down: true,
        require_shared_predicate: true,
        ..Default::default()
    };
    let opt = optimize(&q, &cat, CostModel::default(), &cfg).unwrap();
    let dept_rel = aggview::RelId(2);
    assert!(
        opt.pulled.iter().all(|w| !w.contains(&dept_rel)),
        "dept shares no predicate with the view and must not be pulled"
    );
}

#[test]
fn view_having_is_respected_end_to_end() {
    let mut s = Session::new(empdept());
    // View keeps only departments with average salary above 100k.
    let filtered = s
        .execute(
            "create view rich(dno, asal) as \
               select dno, avg(sal) from emp group by dno having avg(sal) > 100000; \
             select d.dname, r.asal from dept d, rich r where d.dno = r.dno;",
        )
        .unwrap();
    let unfiltered = s
        .execute(
            "create view all_d(dno, asal) as \
               select dno, avg(sal) from emp group by dno; \
             select d.dname, a.asal from dept d, all_d a where d.dno = a.dno;",
        )
        .unwrap();
    assert!(filtered.rows.len() < unfiltered.rows.len());
    let asal = 1;
    assert!(filtered
        .rows
        .iter()
        .all(|r| r.get(asal).as_f64().unwrap() > 100_000.0));
}

#[test]
fn three_views_optimize_and_execute() {
    let cat = gen_star(&StarConfig {
        customers: 150,
        orders_per_customer: 4,
        lines_per_order: 2,
        nations: 10,
        seed: 42,
    })
    .unwrap();
    let mut env = QueryEnv::default();
    let l = env.add_rel("lineitem"); // V1
    let o2 = env.add_rel("orders"); // V2
    let c2 = env.add_rel("customer"); // V3
    let c = env.add_rel("customer"); // base
    let o = env.add_rel("orders"); // base
    let views = vec![
        ViewDef {
            index: 0,
            rels: vec![l],
            preds: vec![],
            group_cols: vec![Col::base(l, 1)],
            aggs: vec![AggSpec::new(AggFunc::Sum, Expr::col(Col::base(l, 3)))],
            having: vec![],
        },
        ViewDef {
            index: 1,
            rels: vec![o2],
            preds: vec![],
            group_cols: vec![Col::base(o2, 1)],
            aggs: vec![AggSpec::count_star()],
            having: vec![],
        },
        ViewDef {
            index: 2,
            rels: vec![c2],
            preds: vec![],
            group_cols: vec![Col::base(c2, 1)],
            aggs: vec![AggSpec::new(AggFunc::Avg, Expr::col(Col::base(c2, 4)))],
            having: vec![],
        },
    ];
    let q = CanonicalQuery {
        env,
        views,
        base_rels: vec![c, o],
        preds: vec![
            Predicate::eq_cols(Col::base(o, 0), Col::base(l, 1)),
            Predicate::eq_cols(Col::base(o, 1), Col::base(c, 0)),
            Predicate::eq_cols(Col::base(c, 0), Col::base(o2, 1)),
            Predicate::eq_cols(Col::base(c, 1), Col::base(c2, 1)),
            Predicate::new(
                Expr::col(Col::agg(ViewId::View(0), 0)),
                CmpOp::Gt,
                Expr::val(Value::Float(100.0)),
            ),
            Predicate::new(
                Expr::col(Col::agg(ViewId::View(1), 0)),
                CmpOp::Ge,
                Expr::val(Value::Int(2)),
            ),
            Predicate::new(
                Expr::col(Col::base(c, 4)),
                CmpOp::Gt,
                Expr::col(Col::agg(ViewId::View(2), 0)),
            ),
        ],
        group: None,
        projection: vec![Col::base(c, 2), Col::base(o, 0)],
    };
    let model = CostModel::default();
    let trad = optimize(&q, &cat, model, &OptimizerConfig::traditional()).unwrap();
    let full = optimize(&q, &cat, model, &OptimizerConfig::default()).unwrap();
    assert!(full.props.cost <= trad.props.cost + 1e-6);
    let engine = Engine::new(&cat, &q.env, model);
    let a = engine.execute(&trad.plan).unwrap();
    let b = engine.execute(&full.plan).unwrap();
    assert_equivalent(&a, &b).unwrap();
    assert_eq!(full.pulled.len(), 3);
}

#[test]
fn non_removable_view_relation_stays_inside() {
    // A view joining emp to a SECOND emp instance on dno (not emp's key):
    // the second instance is not removable, so the minimal invariant set
    // is the whole view — the optimizer must still work.
    let cat = empdept();
    let mut env = QueryEnv::default();
    let a = env.add_rel("emp");
    let b = env.add_rel("emp");
    let outer = env.add_rel("dept");
    let view = ViewDef {
        index: 0,
        rels: vec![a, b],
        preds: vec![Predicate::eq_cols(Col::base(a, 2), Col::base(b, 2))],
        group_cols: vec![Col::base(a, 2)],
        aggs: vec![AggSpec::new(AggFunc::Max, Expr::col(Col::base(b, 3)))],
        having: vec![],
    };
    let q = CanonicalQuery {
        env,
        views: vec![view],
        base_rels: vec![outer],
        preds: vec![
            Predicate::eq_cols(Col::base(outer, 0), Col::base(a, 2)),
            Predicate::new(
                Expr::col(Col::base(outer, 2)),
                CmpOp::Gt,
                Expr::col(Col::agg(ViewId::View(0), 0)),
            ),
        ],
        group: None,
        projection: vec![Col::base(outer, 1)],
    };
    let model = CostModel::default();
    let trad = optimize(&q, &cat, model, &OptimizerConfig::traditional()).unwrap();
    let full = optimize(&q, &cat, model, &OptimizerConfig::default()).unwrap();
    let engine = Engine::new(&cat, &q.env, model);
    let x = engine.execute(&trad.plan).unwrap();
    let y = engine.execute(&full.plan).unwrap();
    assert_equivalent(&x, &y).unwrap();
}

#[test]
fn top_group_by_over_view_combines_or_stacks_correctly() {
    // G0 over an aggregate view: SUM of per-order revenue per customer ==
    // SUM of price per customer.
    let mut s = Session::new(
        gen_star(&StarConfig {
            customers: 80,
            orders_per_customer: 3,
            lines_per_order: 3,
            nations: 10,
            seed: 43,
        })
        .unwrap(),
    );
    let via_view = s
        .execute(
            "create view order_rev(ono, rev) as \
               select l.ono, sum(l.price) from lineitem l group by l.ono; \
             select o.cno, sum(r.rev) from orders o, order_rev r \
              where o.ono = r.ono group by o.cno;",
        )
        .unwrap();
    let direct = s
        .execute(
            "select o.cno, sum(l.price) from orders o, lineitem l \
              where o.ono = l.ono group by o.cno",
        )
        .unwrap();
    let canon = |rows: &[aggview::Tuple]| {
        let mut v: Vec<(i64, i64)> = rows
            .iter()
            .map(|r| {
                (
                    r.get(0).as_i64().unwrap(),
                    (r.get(1).as_f64().unwrap() * 100.0).round() as i64,
                )
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(canon(&via_view.rows), canon(&direct.rows));
}
