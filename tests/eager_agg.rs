//! Differential tests for eager partial aggregation (Yan–Larson
//! push-down below a join input): plans optimized with
//! `use_eager_agg` on and off must execute to **byte-identical**
//! result sets, at 1 and 4 executor threads, over randomized catalogs
//! and aggregate mixes — including MIN/MAX and the duplicate-sensitive
//! SUM/AVG, whose merged partial states are scaled by the partner
//! side's per-group count.
//!
//! All salaries are multiples of 12.5, so float SUM/AVG arithmetic is
//! exact and "byte-identical" is a meaningful bar (see DESIGN.md §16):
//! the eager plan multiplies partial sums by integer duplicate factors
//! where the traditional plan adds row by row, and with arbitrary
//! floats the two could differ in the last ulp.
//!
//! Directed cases pin down when eager must NOT fire: an aggregate
//! whose argument spans both join sides (not decomposable per side), a
//! cost tie (everything fits in memory, so eager is not *strictly*
//! cheaper and the never-worse rule keeps the traditional shape), and
//! stale statistics (the executor skips stats-driven pre-sizing but
//! still computes identical results).

use aggview::core::cost::ops::IoParams;
use aggview::core::cost::CostModel;
use aggview::core::query::examples::{dept, emp};
use aggview::core::query::{CanonicalQuery, QueryEnv, TopGroup};
use aggview::core::{optimize, OptimizerConfig, Plan};
use aggview::executor::{Engine, ExecOptions};
use aggview::storage::datagen::{gen_empdept, EmpDeptConfig};
use aggview::storage::{Catalog, Table};
use aggview::{AggFunc, AggSpec, Col, DataType, Expr, Predicate, Schema, Tuple, Value, ViewId};
use proptest::prelude::*;

/// xorshift64*: deterministic data generator, independent of any RNG
/// crate surface.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e3779b97f4a7c15);
        self.0 = x;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Binary-exact random catalog: one `emp` table (empdept schema),
/// salaries multiples of 12.5, uneven department sizes.
fn random_catalog(n_depts: u64, n_emps: u64, seed: u64) -> Catalog {
    let mut rng = Rng(seed);
    let cat = Catalog::new();
    let mut e = Table::builder(
        "emp",
        Schema::of(&[
            ("eno", DataType::Int),
            ("name", DataType::Str),
            ("dno", DataType::Int),
            ("sal", DataType::Float),
            ("age", DataType::Int),
        ]),
    )
    .primary_key(&["eno"])
    .unwrap();
    for eno in 0..n_emps as i64 {
        let dno = rng.below(n_depts) as i64;
        let sal = 500.0 + rng.below(4000) as f64 * 12.5;
        let age = 18 + rng.below(45) as i64;
        e.push(Tuple::new(vec![
            Value::Int(eno),
            Value::Str(format!("p{eno}").into()),
            Value::Int(dno),
            Value::Float(sal),
            Value::Int(age),
        ]))
        .unwrap();
    }
    cat.add(e.build().unwrap()).unwrap();
    cat
}

/// `SELECT e1.dno, aggs... FROM emp e1, emp e2 WHERE e1.dno = e2.dno
/// GROUP BY e1.dno` — the join-then-aggregate shape where eager
/// aggregation folds one input before the join materializes.
fn selfjoin_query(aggs: Vec<AggSpec>) -> CanonicalQuery {
    let mut env = QueryEnv::default();
    let e1 = env.add_rel("emp");
    let e2 = env.add_rel("emp");
    let n = aggs.len();
    CanonicalQuery {
        env,
        views: vec![],
        base_rels: vec![e1, e2],
        preds: vec![Predicate::eq_cols(
            Col::base(e1, emp::DNO),
            Col::base(e2, emp::DNO),
        )],
        group: Some(TopGroup {
            group_cols: vec![Col::base(e1, emp::DNO)],
            aggs,
            having: vec![],
        }),
        projection: std::iter::once(Col::base(e1, emp::DNO))
            .chain((0..n).map(|i| Col::agg(ViewId::Top, i)))
            .collect(),
    }
}

/// Execute `plan` and return the projected rows, sorted (plans may
/// emit groups in different orders).
fn run_sorted(
    engine: &Engine,
    plan: &Plan,
    projection: &[Col],
) -> (Vec<Tuple>, u64) {
    let rs = engine.execute(plan).unwrap();
    let positions: Vec<usize> = projection
        .iter()
        .map(|c| {
            rs.col_index(*c)
                .unwrap_or_else(|| panic!("plan lost projected column {c}\n{}", plan.explain()))
        })
        .collect();
    let mut rows: Vec<Tuple> = rs.rows.iter().map(|r| r.project(&positions)).collect();
    rows.sort();
    (rows, rs.peak_intermediate_bytes)
}

fn contains_partial_aggregate(p: &Plan) -> bool {
    match p {
        Plan::PartialAggregate { .. } => true,
        Plan::Join { left, right, .. } => {
            contains_partial_aggregate(left) || contains_partial_aggregate(right)
        }
        Plan::GroupBy { input, .. } | Plan::PartialGroupBy { input, .. } => {
            contains_partial_aggregate(input)
        }
        Plan::Scan { .. } | Plan::ExtentScan { .. } | Plan::EmptyScan { .. } => false,
    }
}

fn tight_model() -> CostModel {
    CostModel {
        io: IoParams {
            mem_pages: 64.0,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn eager_on() -> OptimizerConfig {
    OptimizerConfig {
        use_eager_agg: true,
        ..Default::default()
    }
}

fn eager_off() -> OptimizerConfig {
    OptimizerConfig {
        use_eager_agg: false,
        ..Default::default()
    }
}

/// Optimize with eager on and off, run both at 1 and 4 threads, and
/// assert byte-identical sorted results everywhere. Returns whether
/// the eager config actually placed a partial aggregate.
fn differential(q: &CanonicalQuery, cat: &Catalog, model: CostModel) -> bool {
    let eager = optimize(q, cat, model, &eager_on()).unwrap();
    let plain = optimize(q, cat, model, &eager_off()).unwrap();
    assert!(
        eager.props.cost <= plain.props.cost + 1e-6,
        "never-worse violated: eager {} > plain {}",
        eager.props.cost,
        plain.props.cost
    );
    let mut reference: Option<Vec<Tuple>> = None;
    for threads in [1usize, 4] {
        let opts = ExecOptions {
            threads,
            ..Default::default()
        };
        let engine = Engine::new(cat, &q.env, model).with_options(opts);
        for (name, plan) in [("eager", &eager.plan), ("plain", &plain.plan)] {
            let (rows, _) = run_sorted(&engine, plan, &q.projection);
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(
                    r,
                    &rows,
                    "{name} at {threads} thread(s) diverges\n{}",
                    plan.explain()
                ),
            }
        }
    }
    contains_partial_aggregate(&eager.plan)
}

/// Canonical firing shape: both join sides large, duplicate-sensitive
/// aggregates on both sides. Eager must fire, match byte-for-byte, and
/// shrink the measured peak by at least 2x.
#[test]
fn eager_fires_and_matches_on_large_selfjoin() {
    let cat = gen_empdept(&EmpDeptConfig {
        n_depts: 200,
        emps_per_dept: 100,
        young_fraction: 0.3,
        low_budget_fraction: 0.3,
        seed: 12,
    })
    .unwrap();
    // Integer aggregate arguments (plus float MIN, which never rounds)
    // keep this large case exact without constraining the generator.
    let q = selfjoin_query(vec![
        AggSpec::new(AggFunc::Avg, Expr::col(Col::base(aggview::RelId(0), emp::AGE))),
        AggSpec::new(AggFunc::Min, Expr::col(Col::base(aggview::RelId(1), emp::SAL))),
        AggSpec::new(AggFunc::Sum, Expr::col(Col::base(aggview::RelId(1), emp::AGE))),
        AggSpec::count_star(),
    ]);
    let model = tight_model();
    assert!(
        differential(&q, &cat, model),
        "eager aggregation did not fire on the canonical self-join"
    );
    // Measured (not just estimated) peak must drop by at least 2x.
    let eager = optimize(&q, &cat, model, &eager_on()).unwrap();
    let plain = optimize(&q, &cat, model, &eager_off()).unwrap();
    let engine = Engine::new(&cat, &q.env, model);
    let (_, peak_eager) = run_sorted(&engine, &eager.plan, &q.projection);
    let (_, peak_plain) = run_sorted(&engine, &plain.plan, &q.projection);
    assert!(
        peak_eager * 2 <= peak_plain,
        "eager peak {peak_eager} not ≤ half of traditional peak {peak_plain}"
    );
}

/// The aggregate pool the randomized cases draw from: a mix of pushed
/// (e2-side), kept (e1-side), MIN/MAX, and duplicate-sensitive
/// SUM/AVG over the 12.5-exact float salary.
fn agg_pool() -> Vec<AggSpec> {
    let r0 = aggview::RelId(0);
    let r1 = aggview::RelId(1);
    vec![
        AggSpec::new(AggFunc::Avg, Expr::col(Col::base(r0, emp::SAL))),
        AggSpec::new(AggFunc::Sum, Expr::col(Col::base(r0, emp::AGE))),
        AggSpec::new(AggFunc::Min, Expr::col(Col::base(r0, emp::SAL))),
        AggSpec::new(AggFunc::Avg, Expr::col(Col::base(r1, emp::SAL))),
        AggSpec::new(AggFunc::Sum, Expr::col(Col::base(r1, emp::SAL))),
        AggSpec::new(AggFunc::Min, Expr::col(Col::base(r1, emp::SAL))),
        AggSpec::new(AggFunc::Max, Expr::col(Col::base(r1, emp::AGE))),
        AggSpec::count_star(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized differential: catalog shape, aggregate subset, and
    /// memory budget all vary; results must stay byte-identical with
    /// eager on vs off at 1 and 4 threads.
    #[test]
    fn eager_matches_plain_on_random_catalogs(
        seed in 0u64..1u64 << 48,
        n_depts in 2u64..16,
        n_emps in 4u64..220,
        mask in 1u8..=255,
        mem in prop::sample::select(vec![4.0f64, 64.0, 1024.0]),
    ) {
        let cat = random_catalog(n_depts, n_emps, seed);
        let aggs: Vec<AggSpec> = agg_pool()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, a)| a)
            .collect();
        prop_assert!(!aggs.is_empty());
        let model = CostModel {
            io: IoParams { mem_pages: mem, ..Default::default() },
            ..Default::default()
        };
        differential(&selfjoin_query(aggs), &cat, model);
    }
}

/// An aggregate whose argument spans both join sides cannot be
/// decomposed into per-side partial states: eager must not fire, and
/// the plan must equal the eager-off plan.
#[test]
fn eager_declines_aggregate_spanning_the_join() {
    let cat = random_catalog(8, 120, 7);
    let q = selfjoin_query(vec![AggSpec::new(
        AggFunc::Sum,
        Expr::col(Col::base(aggview::RelId(0), emp::AGE)).binary(
            aggview::common::BinaryOp::Add,
            Expr::col(Col::base(aggview::RelId(1), emp::AGE)),
        ),
    )]);
    let model = tight_model();
    let eager = optimize(&q, &cat, model, &eager_on()).unwrap();
    assert!(
        !contains_partial_aggregate(&eager.plan),
        "eager fired on a spanning aggregate\n{}",
        eager.plan.explain()
    );
    differential(&q, &cat, model);
}

/// When every operator fits in memory the eager shape saves no IO, so
/// it is not *strictly* cheaper and the never-worse rule keeps the
/// traditional plan (a cost tie must not flip the shape).
#[test]
fn cost_tie_keeps_traditional_shape() {
    let cat = random_catalog(6, 80, 3);
    let q = selfjoin_query(vec![
        AggSpec::new(AggFunc::Sum, Expr::col(Col::base(aggview::RelId(1), emp::SAL))),
        AggSpec::new(AggFunc::Avg, Expr::col(Col::base(aggview::RelId(0), emp::SAL))),
    ]);
    // Default memory budget: both the build side and the aggregate
    // output fit, so every candidate costs the same IO.
    let model = CostModel::default();
    let eager = optimize(&q, &cat, model, &eager_on()).unwrap();
    let plain = optimize(&q, &cat, model, &eager_off()).unwrap();
    assert!(
        !contains_partial_aggregate(&eager.plan),
        "eager fired without a strict cost win\n{}",
        eager.plan.explain()
    );
    assert_eq!(eager.props.cost, plain.props.cost);
}

/// Eager never fires on a two-sided shape where every aggregate sits
/// on one side and nothing is kept for the merge — simple coalescing
/// already owns that shape, and the partial-aggregate node must not
/// duplicate it.
#[test]
fn eager_requires_a_kept_aggregate() {
    let cat = random_catalog(8, 150, 11);
    let q = selfjoin_query(vec![
        AggSpec::new(AggFunc::Sum, Expr::col(Col::base(aggview::RelId(1), emp::SAL))),
        AggSpec::new(AggFunc::Min, Expr::col(Col::base(aggview::RelId(1), emp::SAL))),
    ]);
    let model = tight_model();
    let eager = optimize(&q, &cat, model, &eager_on()).unwrap();
    assert!(
        !contains_partial_aggregate(&eager.plan),
        "eager fired with zero kept aggregates\n{}",
        eager.plan.explain()
    );
    differential(&q, &cat, model);
}

/// Statistics going stale after planning: the hash-join build-side
/// pre-sizing consults `stats_fresh` and must silently skip the hint,
/// not trust the stale row count — results stay byte-identical.
#[test]
fn stale_stats_skip_presizing_still_correct() {
    let cat = gen_empdept(&EmpDeptConfig {
        n_depts: 40,
        emps_per_dept: 25,
        young_fraction: 0.3,
        low_budget_fraction: 0.3,
        seed: 9,
    })
    .unwrap();
    let q = selfjoin_query(vec![
        AggSpec::new(AggFunc::Sum, Expr::col(Col::base(aggview::RelId(1), emp::AGE))),
        AggSpec::new(AggFunc::Avg, Expr::col(Col::base(aggview::RelId(0), emp::AGE))),
    ]);
    let model = tight_model();
    let eager = optimize(&q, &cat, model, &eager_on()).unwrap();
    let plain = optimize(&q, &cat, model, &eager_off()).unwrap();
    let engine = Engine::new(&cat, &q.env, model).with_options(ExecOptions {
        threads: 4,
        ..Default::default()
    });
    let (fresh_rows, _) = run_sorted(&engine, &eager.plan, &q.projection);
    // Invalidate the statistics *after* planning: execution must not
    // rely on them for correctness.
    cat.mark_modified("emp").unwrap();
    let (stale_eager, _) = run_sorted(&engine, &eager.plan, &q.projection);
    let (stale_plain, _) = run_sorted(&engine, &plain.plan, &q.projection);
    assert_eq!(fresh_rows, stale_eager);
    assert_eq!(fresh_rows, stale_plain);
}

/// Eager composes with the rest of the optimizer: the emp ⋈ dept
/// example-style query still agrees across configs when eager is in
/// the search space (dept is tiny, so eager should not change the
/// result either way).
#[test]
fn empdept_join_agrees_with_eager_in_search_space() {
    let cat = gen_empdept(&EmpDeptConfig {
        n_depts: 30,
        emps_per_dept: 20,
        young_fraction: 0.3,
        low_budget_fraction: 0.3,
        seed: 21,
    })
    .unwrap();
    let mut env = QueryEnv::default();
    let e = env.add_rel("emp");
    let d = env.add_rel("dept");
    let q = CanonicalQuery {
        env,
        views: vec![],
        base_rels: vec![e, d],
        preds: vec![Predicate::eq_cols(
            Col::base(e, emp::DNO),
            Col::base(d, dept::DNO),
        )],
        group: Some(TopGroup {
            group_cols: vec![Col::base(d, dept::DNO)],
            aggs: vec![
                AggSpec::new(AggFunc::Sum, Expr::col(Col::base(e, emp::AGE))),
                AggSpec::new(AggFunc::Min, Expr::col(Col::base(d, dept::BUDGET))),
            ],
            having: vec![],
        }),
        projection: vec![
            Col::base(d, dept::DNO),
            Col::agg(ViewId::Top, 0),
            Col::agg(ViewId::Top, 1),
        ],
    };
    for model in [CostModel::default(), tight_model()] {
        differential(&q, &cat, model);
    }
}
