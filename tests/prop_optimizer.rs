//! Property tests for the optimizer's two central guarantees, over
//! randomized databases and memory budgets:
//!
//! 1. **semantic safety** — every configuration's chosen plan executes
//!    to the same result multiset;
//! 2. **never-worse** — the full optimizer's estimated cost never
//!    exceeds the traditional optimizer's.

use aggview::core::cost::ops::IoParams;
use aggview::core::query::examples::{example1_query, example2_query, example2_wide_query};
use aggview::core::{optimize, CostModel, OptimizerConfig, PullUpLevel};
use aggview::executor::{assert_equivalent, Engine};
use aggview::storage::datagen::{gen_empdept, EmpDeptConfig};
use proptest::prelude::*;

fn model(mem: f64) -> CostModel {
    CostModel {
        io: IoParams {
            mem_pages: mem,
            ..Default::default()
        },
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_configs_agree_and_never_worse(
        n_depts in 2usize..60,
        emps_per_dept in 1usize..40,
        young_pct in 0u32..100,
        seed in 0u64..10_000,
        mem in prop::sample::select(vec![4.0f64, 16.0, 256.0]),
        which in 0usize..3,
    ) {
        let catalog = gen_empdept(&EmpDeptConfig {
            n_depts,
            emps_per_dept,
            young_fraction: young_pct as f64 / 100.0,
            low_budget_fraction: 0.4,
            seed,
        })
        .unwrap();
        let q = match which {
            0 => example1_query(),
            1 => example2_query(),
            _ => example2_wide_query(),
        };
        let m = model(mem);
        let engine = Engine::new(&catalog, &q.env, m);

        let trad = optimize(&q, &catalog, m, &OptimizerConfig::traditional()).unwrap();
        let reference = engine.execute(&trad.plan).unwrap();

        for cfg in [
            OptimizerConfig::push_down_only(),
            OptimizerConfig {
                pull_up: PullUpLevel::Limited(1),
                ..Default::default()
            },
            OptimizerConfig::default(),
        ] {
            let opt = optimize(&q, &catalog, m, &cfg).unwrap();
            opt.plan.validate(&catalog, &q.env.rel_tables).unwrap();
            prop_assert!(
                opt.props.cost <= trad.props.cost + 1e-6,
                "never-worse violated: {} > {}",
                opt.props.cost,
                trad.props.cost
            );
            let rs = engine.execute(&opt.plan).unwrap();
            prop_assert!(
                assert_equivalent(&reference, &rs).is_ok(),
                "results diverge under {cfg:?}:\n{}",
                opt.plan.explain()
            );
        }
    }

    /// Pull-up level is monotone in the cost guarantee: more search never
    /// hurts the estimate.
    #[test]
    fn more_pull_up_never_hurts(
        n_depts in 2usize..40,
        emps_per_dept in 1usize..25,
        seed in 0u64..10_000,
    ) {
        let catalog = gen_empdept(&EmpDeptConfig {
            n_depts,
            emps_per_dept,
            young_fraction: 0.1,
            low_budget_fraction: 0.4,
            seed,
        })
        .unwrap();
        let q = example1_query();
        let m = model(8.0);
        let mut prev = f64::INFINITY;
        for level in [
            PullUpLevel::Disabled,
            PullUpLevel::Limited(1),
            PullUpLevel::Unlimited,
        ] {
            let cfg = OptimizerConfig {
                pull_up: level,
                push_down: true,
                require_shared_predicate: true,
                ..Default::default()
            };
            let opt = optimize(&q, &catalog, m, &cfg).unwrap();
            prop_assert!(
                opt.props.cost <= prev + 1e-6,
                "larger space produced costlier plan at {level:?}"
            );
            prev = opt.props.cost.min(prev);
        }
    }
}
