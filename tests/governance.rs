//! Integration tests for the resource-governance subsystem: graceful
//! degradation to the traditional plan under search budgets, prompt
//! aborts under cancellation and row budgets, and a property test that
//! injected storage/executor faults always surface as structured,
//! retryable errors — never as panics or silent partial results.

use aggview::common::ScheduledFaults;
use aggview::core::analyze::dataflow;
use aggview::core::query::examples::{example1_query, example2_query};
use aggview::core::{
    optimize, optimize_governed, optimize_traditional, CancellationToken, CostModel,
    DegradationReason, OptimizerConfig, ResourceGovernor, ResourceLimits,
};
use aggview::executor::{assert_equivalent, Engine, ExecOptions};
use aggview::storage::datagen::{gen_empdept, EmpDeptConfig};
use proptest::prelude::*;
use std::time::Duration;

fn catalog() -> aggview::storage::Catalog {
    gen_empdept(&EmpDeptConfig {
        n_depts: 10,
        emps_per_dept: 12,
        young_fraction: 0.3,
        low_budget_fraction: 0.5,
        seed: 7,
    })
    .unwrap()
}

#[test]
fn tiny_search_budget_degrades_to_the_traditional_plan() {
    let catalog = catalog();
    let q = example1_query();
    let model = CostModel::default();

    let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_plans(1));
    let opt = optimize_governed(&q, &catalog, model, &OptimizerConfig::default(), &gov).unwrap();
    assert!(opt.outcome.is_degraded(), "expected degraded outcome");
    assert_eq!(
        opt.outcome.degradation_reason(),
        Some(DegradationReason::SearchBudgetExhausted)
    );

    // The fallback is exactly the traditional two-phase plan: same
    // estimated cost, same results.
    let trad = optimize_traditional(&q, &catalog, model).unwrap();
    assert!(
        (opt.props.cost - trad.props.cost).abs() < 1e-9,
        "degraded cost {} != traditional cost {}",
        opt.props.cost,
        trad.props.cost
    );
    let engine = Engine::new(&catalog, &q.env, model);
    let degraded = engine.execute(&opt.plan).unwrap();
    let reference = engine.execute(&trad.plan).unwrap();
    assert_equivalent(&reference, &degraded).unwrap();
}

#[test]
fn zero_timeout_degrades_with_timeout_reason() {
    let catalog = catalog();
    let q = example2_query();
    let model = CostModel::default();

    let gov =
        ResourceGovernor::new(ResourceLimits::unlimited().with_timeout(Duration::from_nanos(0)));
    let opt = optimize_governed(&q, &catalog, model, &OptimizerConfig::default(), &gov).unwrap();
    assert_eq!(
        opt.outcome.degradation_reason(),
        Some(DegradationReason::OptimizerTimeout)
    );
    // The degraded plan still executes (the fallback governor keeps the
    // token but drops the exhausted limits).
    let engine = Engine::new(&catalog, &q.env, model);
    engine.execute(&opt.plan).unwrap();
}

#[test]
fn cancellation_propagates_and_never_degrades() {
    let catalog = catalog();
    let q = example1_query();
    let model = CostModel::default();
    let cfg = OptimizerConfig::default();

    let token = CancellationToken::new();
    token.cancel();
    let gov = ResourceGovernor::with_token(token.clone(), ResourceLimits::unlimited());

    // Cancellation is a user decision, not resource pressure: the
    // optimizer must not fall back to the traditional plan.
    let err = optimize_governed(&q, &catalog, model, &cfg, &gov).unwrap_err();
    assert_eq!(err.kind(), "cancelled");
    assert!(!err.is_retryable());

    // The executor honours the same token at operator boundaries.
    let opt = optimize(&q, &catalog, model, &cfg).unwrap();
    let engine = Engine::new(&catalog, &q.env, model);
    let err = engine.execute_governed(&opt.plan, &gov, None).unwrap_err();
    assert_eq!(err.kind(), "cancelled");
}

#[test]
fn row_budget_aborts_within_one_operator_boundary() {
    let catalog = catalog();
    let q = example1_query();
    let model = CostModel::default();

    let opt = optimize(&q, &catalog, model, &OptimizerConfig::default()).unwrap();
    let engine = Engine::new(&catalog, &q.env, model);

    // Just above the dataflow row floor: static admission control
    // rejects any cap at or under the floor before execution starts, so
    // a mid-run abort needs a budget the floor admits but the real
    // (larger) output exhausts.
    let floor = dataflow::analyze_plan(&opt.plan, &catalog, Some(q.env.rel_tables.as_slice()))
        .bounds
        .min_rows;
    let cap = floor + 5;
    let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_rows(cap));
    let err = engine.execute_governed(&opt.plan, &gov, None).unwrap_err();
    assert_eq!(err.kind(), "resource-exhausted");
    assert!(!err.is_retryable());
    // Every intermediate tuple is charged as it is produced, so the
    // abort lands on the first tuple past the cap — not after a whole
    // operator has materialized its output.
    assert!(
        gov.rows_used() <= cap + 1,
        "abort was not prompt: {} rows charged against a cap of {cap}",
        gov.rows_used()
    );
}

#[test]
fn byte_budget_aborts_with_structured_error() {
    let catalog = catalog();
    let q = example2_query();
    let model = CostModel::default();

    let opt = optimize(&q, &catalog, model, &OptimizerConfig::default()).unwrap();
    let engine = Engine::new(&catalog, &q.env, model);

    // Just above the static byte floor (see the row-budget test): the
    // floor counts minimum value widths, real tuples are wider.
    let floor = dataflow::analyze_plan(&opt.plan, &catalog, Some(q.env.rel_tables.as_slice()))
        .bounds
        .min_bytes;
    let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_bytes(floor + 64));
    let err = engine.execute_governed(&opt.plan, &gov, None).unwrap_err();
    assert_eq!(err.kind(), "resource-exhausted");
}

/// Options that force the multi-worker path even on this small catalog.
fn parallel_options(threads: usize) -> ExecOptions {
    ExecOptions {
        threads,
        morsel_rows: 32,
        parallel_threshold: 1,
        ..ExecOptions::serial()
    }
}

#[test]
fn row_budget_holds_under_parallel_execution() {
    let catalog = catalog();
    let q = example1_query();
    let model = CostModel::default();

    let opt = optimize(&q, &catalog, model, &OptimizerConfig::default()).unwrap();
    let threads = 4u64;
    let engine =
        Engine::new(&catalog, &q.env, model).with_options(parallel_options(threads as usize));

    let floor = dataflow::analyze_plan(&opt.plan, &catalog, Some(q.env.rel_tables.as_slice()))
        .bounds
        .min_rows;
    let cap = floor + 5;
    let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_rows(cap));
    let err = engine.execute_governed(&opt.plan, &gov, None).unwrap_err();
    assert_eq!(err.kind(), "resource-exhausted");
    // Workers charge the shared atomic budget per output tuple and stop
    // at their first failed charge, so the collective overshoot is
    // bounded by one tuple per worker.
    assert!(
        gov.rows_used() <= cap + threads,
        "parallel abort was not prompt: {} rows charged against a cap of {cap}",
        gov.rows_used()
    );
}

#[test]
fn cancellation_aborts_parallel_execution() {
    let catalog = catalog();
    let q = example1_query();
    let model = CostModel::default();

    let opt = optimize(&q, &catalog, model, &OptimizerConfig::default()).unwrap();
    let engine = Engine::new(&catalog, &q.env, model).with_options(parallel_options(8));

    let token = CancellationToken::new();
    token.cancel();
    let gov = ResourceGovernor::with_token(token, ResourceLimits::unlimited());
    let err = engine.execute_governed(&opt.plan, &gov, None).unwrap_err();
    assert_eq!(err.kind(), "cancelled");
    assert!(!err.is_retryable());
}

/// Parallel execution must not weaken the governed-result contract: the
/// governed parallel run either matches the ungoverned serial reference
/// or fails with a structured error — never a silent partial result.
#[test]
fn parallel_results_match_serial_under_generous_budgets() {
    let catalog = catalog();
    let q = example1_query();
    let model = CostModel::default();

    let opt = optimize(&q, &catalog, model, &OptimizerConfig::default()).unwrap();
    let serial = Engine::new(&catalog, &q.env, model);
    let reference = serial.execute(&opt.plan).unwrap();

    let parallel = Engine::new(&catalog, &q.env, model).with_options(parallel_options(4));
    let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_rows(1_000_000));
    let rs = parallel.execute_governed(&opt.plan, &gov, None).unwrap();
    assert_equivalent(&reference, &rs).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under any schedule of injected faults, every plan either runs to
    /// completion with the correct result or returns a structured,
    /// retryable error. No panics, no silent partial results.
    #[test]
    fn injected_faults_complete_or_fail_cleanly(
        n_depts in 2usize..20,
        emps_per_dept in 1usize..15,
        seed in 0u64..1_000,
        schedule in prop::collection::vec(0u64..40, 0..5),
        which in 0usize..2,
    ) {
        let catalog = gen_empdept(&EmpDeptConfig {
            n_depts,
            emps_per_dept,
            young_fraction: 0.3,
            low_budget_fraction: 0.4,
            seed,
        })
        .unwrap();
        let q = if which == 0 { example1_query() } else { example2_query() };
        let model = CostModel::default();
        let opt = optimize(&q, &catalog, model, &OptimizerConfig::default()).unwrap();
        let engine = Engine::new(&catalog, &q.env, model);
        let reference = engine.execute(&opt.plan).unwrap();

        let faults = ScheduledFaults::failing_calls(schedule.iter().copied());
        let gov = ResourceGovernor::unlimited();
        match engine.execute_governed(&opt.plan, &gov, Some(&faults)) {
            // No scheduled call was reached: the run must be complete
            // and correct, not silently truncated.
            Ok(rs) => prop_assert!(assert_equivalent(&reference, &rs).is_ok()),
            Err(e) => {
                prop_assert_eq!(e.kind(), "transient");
                prop_assert!(e.is_retryable());
                prop_assert!(e.to_string().contains("injected fault"),
                    "unexpected error text: {}", e);
            }
        }
    }
}
