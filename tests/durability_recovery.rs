//! Crash-point recovery harness.
//!
//! For every durability IO site, every fault kind, and every
//! occurrence of that site in a fixed workload, this test: runs the
//! workload against a durable catalog with exactly that one fault
//! injected, mirrors each operation that *reported success* into an
//! in-memory reference catalog, "crashes" (drops the catalog with no
//! shutdown ceremony), recovers with a plain `Catalog::open`, and
//! asserts:
//!
//! 1. **recovered == committed** — the recovered catalog's state equals
//!    the reference built from successful operations only;
//! 2. **idempotence** — recovering the same directory again yields the
//!    identical state;
//! 3. **staleness across crashes** — a materialized view the recovered
//!    catalog considers fresh is fresh in the reference too (demotion
//!    to stale is legal, promotion to fresh never is).

use aggview::common::{tuple, IoFaultKind, ScheduledIoFaults};
use aggview::storage::matview::{ExtentLayout, MatViewDef, MatViewMeta};
use aggview::storage::{Catalog, Table};
use aggview::{AggSpec, Col, DataType, RelId, Schema};
use std::path::PathBuf;
use std::sync::Arc;

/// The IO sites a durable catalog consults, in first-use order.
const DURABLE_SITES: &[&str] = &[
    "wal.append",
    "wal.fsync",
    "wal.truncate",
    "snapshot.write",
    "snapshot.fsync",
    "snapshot.rename",
];

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aggview-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dept() -> Arc<Table> {
    let mut b = Table::builder(
        "dept",
        Schema::of(&[("dno", DataType::Int), ("budget", DataType::Float)]),
    )
    .primary_key(&["dno"])
    .unwrap();
    b.push(tuple![0, 100.0]).unwrap();
    b.push(tuple![1, 200.0]).unwrap();
    b.build().unwrap()
}

fn emp() -> Arc<Table> {
    Table::builder(
        "emp",
        Schema::of(&[("eno", DataType::Int), ("dno", DataType::Int)]),
    )
    .primary_key(&["eno"])
    .unwrap()
    .build()
    .unwrap()
}

fn view_meta(catalog: &Catalog) -> (MatViewMeta, Arc<Table>) {
    let def = MatViewDef {
        name: "by_dno".to_string(),
        tables: vec!["emp".to_string()],
        preds: vec![],
        group_cols: vec![Col::base(RelId(0), 1)],
        aggs: vec![AggSpec::count_star()],
        column_names: vec!["dno".to_string(), "n".to_string()],
    };
    let layout = ExtentLayout::of(&def);
    let fields: Vec<(String, DataType)> = (0..layout.width)
        .map(|i| (format!("c{i}"), DataType::Int))
        .collect();
    let refs: Vec<(&str, DataType)> = fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let extent = Table::builder(MatViewMeta::extent_name("by_dno"), Schema::of(&refs))
        .build()
        .unwrap();
    let meta = MatViewMeta {
        extent: MatViewMeta::extent_name("by_dno"),
        layout,
        base_versions: vec![catalog.data_version("emp")],
        def,
    };
    (meta, extent)
}

/// Run the fixed workload against `cat`, mirroring every operation that
/// reports success into `reference`. Operations keep going after a
/// failure — exercising the writer's rollback of torn state on the next
/// append. `checkpoint` mutates no logical state, so it is issued to
/// the durable catalog only.
fn run_workload(cat: &Catalog, reference: &Catalog) {
    let both = |durable_ok: bool, mirror: &dyn Fn(&Catalog)| {
        if durable_ok {
            mirror(reference);
        }
    };
    both(cat.add(dept()).is_ok(), &|r| r.add(dept()).unwrap());
    both(cat.add(emp()).is_ok(), &|r| r.add(emp()).unwrap());
    both(
        cat.append_rows("emp", vec![tuple![10, 0], tuple![11, 1]])
            .is_ok(),
        &|r| {
            r.append_rows("emp", vec![tuple![10, 0], tuple![11, 1]])
                .unwrap();
        },
    );
    let _ = cat.checkpoint();
    both(cat.append_rows("emp", vec![tuple![12, 1]]).is_ok(), &|r| {
        r.append_rows("emp", vec![tuple![12, 1]]).unwrap();
    });
    both(cat.mark_modified("dept").is_ok(), &|r| {
        r.mark_modified("dept").unwrap()
    });
    // The view pair (extent table, then meta) is attempted only when
    // the base table exists, and each half is mirrored independently so
    // a fault between the two leaves both catalogs with just the
    // extent. Version counters stay in lock-step across the catalogs
    // (a failed durable op never bumps, and its mirror is skipped), so
    // anchoring each meta to its own catalog's counters yields equal
    // `base_versions`.
    if cat.contains("emp") {
        let (meta, extent) = view_meta(cat);
        let extent_ok = cat.add(extent).is_ok();
        both(extent_ok, &|r| {
            let (_, e) = view_meta(r);
            r.add(e).unwrap();
        });
        if extent_ok {
            both(cat.register_matview(meta.clone()).is_ok(), &|r| {
                let (m, _) = view_meta(r);
                r.register_matview(m).unwrap();
            });
        }
    }
    let _ = cat.checkpoint();
    both(cat.append_rows("emp", vec![tuple![13, 0]]).is_ok(), &|r| {
        r.append_rows("emp", vec![tuple![13, 0]]).unwrap();
    });
    // Mixed DML after a checkpoint: both record kinds (UpdateBatch,
    // DeleteBatch) land in the live WAL tail, so every crash point in
    // this suffix exercises their replay. Positions are only valid when
    // the earlier appends committed, so each op is gated on the durable
    // catalog's current row count.
    if cat.contains("emp") && cat.get("emp").unwrap().rows().len() >= 2 {
        both(
            cat.update_rows("emp", &[1], vec![tuple![11, 0]]).is_ok(),
            &|r| {
                r.update_rows("emp", &[1], vec![tuple![11, 0]]).unwrap();
            },
        );
        both(cat.delete_rows("emp", &[0]).is_ok(), &|r| {
            r.delete_rows("emp", &[0]).unwrap();
        });
    }
    let _ = cat.checkpoint();
    if cat.contains("emp") && !cat.get("emp").unwrap().rows().is_empty() {
        // A delete after the final checkpoint: replayed from the WAL
        // tail over the snapshot image.
        both(cat.delete_rows("emp", &[0]).is_ok(), &|r| {
            r.delete_rows("emp", &[0]).unwrap();
        });
    }
}

/// Versions can legitimately diverge between the durable catalog and
/// the reference once an op fails on only one side (a failed insert
/// still never bumps, but a *skipped* mirror keeps the reference one
/// mutation behind forever after). The workload above is written so
/// every mirrored op succeeds on the reference exactly when it
/// succeeded durably, keeping the two in lock-step; this helper is the
/// equality assertion with a readable diff.
fn assert_state_eq(recovered: &Catalog, reference: &Catalog, ctx: &str) {
    let got = recovered.describe_state();
    let want = reference.describe_state();
    assert_eq!(got, want, "recovered state diverged ({ctx})");
}

#[test]
fn every_crash_point_recovers_exactly_the_committed_state() {
    let mut cases = 0u32;
    for &site in DURABLE_SITES {
        for &kind in IoFaultKind::ALL {
            for nth in 0.. {
                let dir = tmpdir("site");
                let faults = Arc::new(ScheduledIoFaults::at(site, nth, kind));
                let cat = Catalog::open_with_faults(&dir, faults.clone()).unwrap();
                let reference = Catalog::new();
                run_workload(&cat, &reference);
                let delivered = faults.fired();
                drop(cat); // crash: no checkpoint, no shutdown

                let ctx = format!("site={site} kind={kind:?} nth={nth}");
                let recovered = Catalog::open(&dir).unwrap();
                assert_state_eq(&recovered, &reference, &ctx);

                // Staleness across the crash: never fresher than the
                // reference says.
                for name in recovered.matview_names() {
                    let meta = recovered.matview(&name).unwrap();
                    if !meta.is_stale(&recovered) {
                        let ref_meta = reference
                            .matview(&name)
                            .unwrap_or_else(|| panic!("{ctx}: phantom fresh view {name}"));
                        assert!(
                            !ref_meta.is_stale(&reference),
                            "{ctx}: view {name} recovered fresher than committed"
                        );
                    }
                }
                drop(recovered);

                // Idempotence: recovery of a recovered directory is a
                // fixed point.
                let again = Catalog::open(&dir).unwrap();
                assert_state_eq(&again, &reference, &format!("{ctx} (second recovery)"));
                drop(again);
                std::fs::remove_dir_all(&dir).unwrap();

                cases += 1;
                if !delivered {
                    // nth exceeded the number of times the workload
                    // consults this site: the clean run doubles as the
                    // no-fault baseline, and the sweep is complete.
                    break;
                }
            }
        }
    }
    // Every site must have been exercised at least once with a real
    // fault (one clean terminating run per site/kind, plus ≥1 faulted).
    assert!(
        cases >= (DURABLE_SITES.len() * IoFaultKind::ALL.len() * 2) as u32,
        "suspiciously few crash points: {cases}"
    );
}

/// A fault during recovery's own WAL re-open (the tail rollback) must
/// not corrupt anything: the next clean open still lands on the
/// committed state.
#[test]
fn recovery_after_failed_recovery_is_clean() {
    let dir = tmpdir("rerecover");
    let reference = Catalog::new();
    {
        let cat = Catalog::open(&dir).unwrap();
        run_workload(&cat, &reference);
    }
    // Fail the first post-recovery append; state must be unchanged.
    let faults = Arc::new(ScheduledIoFaults::at("wal.append", 0, IoFaultKind::Error));
    let cat = Catalog::open_with_faults(&dir, faults).unwrap();
    assert_state_eq(&cat, &reference, "recovery under injector");
    assert!(cat.append_rows("emp", vec![tuple![99, 0]]).is_err());
    assert_state_eq(&cat, &reference, "failed append rolled back");
    drop(cat);
    let clean = Catalog::open(&dir).unwrap();
    assert_state_eq(&clean, &reference, "clean reopen");
    std::fs::remove_dir_all(&dir).unwrap();
}
