//! Integration tests for the plan-dataflow subsystem:
//!
//! 1. **contradiction pruning** — a SQL query with contradictory
//!    predicates executes through `Plan::EmptyScan` without touching
//!    storage (zero IO pages, zero governed rows);
//! 2. **static admission control** — a plan whose guaranteed row/byte
//!    floor exceeds the budget is rejected *before* execution with a
//!    structured `plan-inadmissible` error and no work performed;
//! 3. **soundness property** — over randomized databases and the
//!    optimizer corpus at 1 and 4 executor threads, every concrete
//!    output value lies inside its predicted domain and every measured
//!    resource counter meets its static lower bound;
//! 4. **type certification** — corpus plans certify Mixed-free and
//!    execute with zero runtime demotions.

use aggview::common::{CmpOp, Col, Predicate, Value};
use aggview::core::analyze::dataflow;
use aggview::core::plan::all_cols;
use aggview::core::query::examples::{emp, example1_query, example2_query, example2_wide_query};
use aggview::core::query::QueryEnv;
use aggview::core::{optimize, CostModel, OptimizerConfig, Plan, ResourceGovernor, ResourceLimits};
use aggview::executor::{Engine, ExecOptions};
use aggview::sql::Session;
use aggview::storage::datagen::{gen_empdept, EmpDeptConfig};
use aggview::storage::Catalog;
use proptest::prelude::*;

fn catalog() -> Catalog {
    gen_empdept(&EmpDeptConfig::default()).unwrap()
}

/// An unfiltered scan of `emp` inside a fresh single-relation
/// environment, plus that environment.
fn emp_scan_env() -> (Plan, QueryEnv) {
    let mut env = QueryEnv::default();
    let e = env.add_rel("emp");
    (Plan::scan(e, "emp", vec![], all_cols(e, 5)), env)
}

#[test]
fn contradictory_sql_query_executes_via_empty_scan() {
    let mut session = Session::new(catalog());
    let r = session
        .execute("select eno from emp where sal > 5 and sal < 3;")
        .unwrap();
    assert!(r.rows.is_empty(), "contradictory predicates admit no rows");
    assert!(
        r.plan.contains("EmptyScan"),
        "expected the plan to be pruned to an EmptyScan:\n{}",
        r.plan
    );
    assert_eq!(r.io_pages, 0.0, "a pruned plan must not read any pages");
}

#[test]
fn pruned_plan_reports_a_single_empty_scan_and_charges_nothing() {
    let cat = catalog();
    let mut env = QueryEnv::default();
    let e = env.add_rel("emp");
    let contradictory = Plan::scan(
        e,
        "emp",
        vec![
            Predicate::cmp_const(Col::base(e, emp::SAL), CmpOp::Gt, Value::Float(5.0)),
            Predicate::cmp_const(Col::base(e, emp::SAL), CmpOp::Lt, Value::Float(3.0)),
        ],
        all_cols(e, 5),
    );
    let (pruned, n) = dataflow::prune_empty(&contradictory, &cat, Some(env.rel_tables.as_slice()));
    assert_eq!(n, 1, "the contradictory scan must be pruned");
    assert!(matches!(pruned, Plan::EmptyScan { .. }));

    let engine = Engine::new(&cat, &env, CostModel::default());
    let gov = ResourceGovernor::unlimited();
    let rs = engine.execute_governed(&pruned, &gov, None).unwrap();
    assert!(rs.rows.is_empty());
    assert_eq!(rs.io_pages, 0.0);
    assert_eq!(rs.breakdown.len(), 1, "exactly one operator must report");
    assert_eq!(rs.breakdown[0].op, "empty-scan");
    assert_eq!(rs.breakdown[0].pages, 0.0);
    assert_eq!(gov.rows_used(), 0, "no tuples may be charged");
    assert_eq!(gov.bytes_used(), 0, "no bytes may be charged");
}

#[test]
fn over_budget_plan_is_rejected_before_any_work() {
    let cat = catalog();
    let (scan, env) = emp_scan_env();
    let engine = Engine::new(&cat, &env, CostModel::default());

    // The static row floor of an unfiltered scan is the table's row
    // count; a cap of 3 is provably unreachable, so the engine must
    // reject up front instead of scanning and aborting mid-run.
    let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_rows(3));
    let err = engine.execute_governed(&scan, &gov, None).unwrap_err();
    assert_eq!(err.kind(), "plan-inadmissible");
    assert!(
        !err.is_retryable(),
        "an inadmissible plan never succeeds on retry"
    );
    assert_eq!(gov.rows_used(), 0, "rejection must precede execution");
    assert_eq!(gov.bytes_used(), 0, "rejection must precede execution");

    // The byte floor triggers the same gate.
    let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_bytes(8));
    let err = engine.execute_governed(&scan, &gov, None).unwrap_err();
    assert_eq!(err.kind(), "plan-inadmissible");
    assert_eq!(gov.bytes_used(), 0);

    // A budget at the floor itself is admissible: the gate only rejects
    // caps the floor *exceeds*.
    let floor = dataflow::analyze_plan(&scan, &cat, Some(env.rel_tables.as_slice()))
        .bounds
        .min_rows;
    let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_rows(floor));
    engine
        .execute_governed(&scan, &gov, None)
        .expect("a cap equal to the floor must be admitted");
}

#[test]
fn certified_corpus_executes_without_mixed_demotions() {
    let cat = catalog();
    for q in [example1_query(), example2_query(), example2_wide_query()] {
        for cfg in [OptimizerConfig::traditional(), OptimizerConfig::default()] {
            let opt = optimize(&q, &cat, CostModel::default(), &cfg).unwrap();
            let df = dataflow::analyze_plan(&opt.plan, &cat, Some(q.env.rel_tables.as_slice()));
            assert!(
                df.mixed_free,
                "corpus plan failed type certification:\n{}",
                opt.plan.explain()
            );
            let engine = Engine::new(&cat, &q.env, CostModel::default());
            let rs = engine.execute(&opt.plan).unwrap();
            assert_eq!(
                rs.mixed_demotions,
                0,
                "certified plan demoted typed columns at runtime:\n{}",
                opt.plan.explain()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The pass is sound: executed results never escape the predicted
    /// per-column domains, and the measured row/byte/peak counters are
    /// never below the guaranteed floors — at 1 and 4 executor threads,
    /// over randomized databases and the full example corpus.
    #[test]
    fn predicted_domains_and_bounds_are_sound(
        n_depts in 2usize..30,
        emps_per_dept in 1usize..25,
        young_pct in 0u32..100,
        seed in 0u64..10_000,
        which in 0usize..3,
    ) {
        let cat = gen_empdept(&EmpDeptConfig {
            n_depts,
            emps_per_dept,
            young_fraction: young_pct as f64 / 100.0,
            low_budget_fraction: 0.4,
            seed,
        })
        .unwrap();
        let q = match which {
            0 => example1_query(),
            1 => example2_query(),
            _ => example2_wide_query(),
        };
        let opt = optimize(&q, &cat, CostModel::default(), &OptimizerConfig::default()).unwrap();
        let df = dataflow::analyze_plan(&opt.plan, &cat, Some(q.env.rel_tables.as_slice()));

        for threads in [1usize, 4] {
            let engine = Engine::new(&cat, &q.env, CostModel::default())
                .with_options(ExecOptions { threads, ..Default::default() });
            let gov = ResourceGovernor::unlimited();
            let rs = engine.execute_governed(&opt.plan, &gov, None).unwrap();

            // Every concrete output value satisfies its column's domain.
            for (k, col) in rs.cols.iter().enumerate() {
                if let Some(dom) = df.columns.get(col) {
                    for row in &rs.rows {
                        prop_assert!(
                            dom.admits(row.get(k)),
                            "value {} of column {col} escapes its domain {dom:?} \
                             ({threads} threads)",
                            row.get(k)
                        );
                    }
                }
            }

            // Measured usage meets every static lower bound (an
            // unlimited governor still counts exactly).
            prop_assert!(
                gov.rows_used() >= df.bounds.min_rows,
                "row floor {} exceeds measured {} ({threads} threads)",
                df.bounds.min_rows,
                gov.rows_used()
            );
            prop_assert!(
                gov.bytes_used() >= df.bounds.min_bytes,
                "byte floor {} exceeds measured {} ({threads} threads)",
                df.bounds.min_bytes,
                gov.bytes_used()
            );
            prop_assert!(
                rs.peak_intermediate_bytes >= df.bounds.min_peak_bytes,
                "peak floor {} exceeds measured {} ({threads} threads)",
                df.bounds.min_peak_bytes,
                rs.peak_intermediate_bytes
            );
        }
    }
}
