//! Integration tests for the materialized-aggregate-view subsystem:
//!
//! 1. **equivalence** — a query answered from a view extent returns
//!    exactly the rows of the inlined formulation, at 1 and 4 executor
//!    threads (the extent stores finished aggregates, so results are
//!    identical bit-for-bit, not merely approximately);
//! 2. **cost gating** — the optimizer takes the extent access path only
//!    when it is *strictly* cheaper than the best inlined plan; on a
//!    dataset small enough that both plans cost one page, the inlined
//!    plan wins the tie;
//! 3. **maintenance** — the extent after incremental `INSERT`
//!    maintenance equals the extent after a from-scratch `REFRESH`;
//! 4. **fallback** — blocks the matcher cannot subsume (extra grouping
//!    column, non-decomposable aggregate, predicate on a
//!    projected-away column) silently fall back to inlining, produce
//!    correct rows, and the fallback plan passes the static analyzer.

use aggview::sql::{Session, SqlResult};
use aggview::storage::datagen::{gen_empdept, EmpDeptConfig};
use aggview::Tuple;

/// Large enough that the department extent (30 rows) is strictly
/// cheaper than rescanning `emp` (1200 rows, several pages): the
/// matcher only wins on cost, never by fiat.
fn big_session() -> Session {
    Session::new(
        gen_empdept(&EmpDeptConfig {
            n_depts: 30,
            emps_per_dept: 40,
            young_fraction: 0.3,
            seed: 33,
            ..Default::default()
        })
        .unwrap(),
    )
}

/// Small enough that both the extent and the base table fit in one
/// page, so the extent path *ties* the inlined plan instead of
/// beating it.
fn tiny_session() -> Session {
    Session::new(
        gen_empdept(&EmpDeptConfig {
            n_depts: 3,
            emps_per_dept: 5,
            young_fraction: 0.3,
            seed: 7,
            ..Default::default()
        })
        .unwrap(),
    )
}

const CREATE_DSAL: &str = "create materialized view dsal(dno, total, n) as \
                           select dno, sum(sal), count(*) from emp group by dno";

fn sorted_rows(r: &SqlResult) -> Vec<Tuple> {
    let mut v = r.rows.clone();
    v.sort();
    v
}

/// Run `sql` once with view matching enabled and once with it
/// disabled, returning both results.
fn with_and_without_mv(s: &mut Session, sql: &str) -> (SqlResult, SqlResult) {
    s.config.use_matviews = true;
    let with_mv = s.execute(sql).unwrap();
    s.config.use_matviews = false;
    let inlined = s.execute(sql).unwrap();
    s.config.use_matviews = true;
    (with_mv, inlined)
}

#[test]
fn extent_answered_query_identical_to_inlined_at_1_and_4_threads() {
    for threads in [1usize, 4] {
        let mut s = big_session();
        s.exec.threads = threads;
        s.execute(CREATE_DSAL).unwrap();

        for sql in [
            // Exact match: same grouping, aggregates read back finished.
            "select dno, sum(sal) from emp group by dno",
            // Compensated match: the extent satisfies a residual filter
            // over the grouping column.
            "select dno, sum(sal) from emp where dno < 11 group by dno",
        ] {
            let (with_mv, inlined) = with_and_without_mv(&mut s, sql);
            assert!(
                with_mv.plan.contains("ExtentScan"),
                "[threads={threads}] expected extent path for {sql}, got:\n{}",
                with_mv.plan
            );
            assert!(
                !inlined.plan.contains("ExtentScan"),
                "[threads={threads}] use_matviews=false must inline"
            );
            // Tuple equality is exact (bit-level on floats): the extent
            // stores the very aggregates the inlined plan computes.
            assert_eq!(
                sorted_rows(&with_mv),
                sorted_rows(&inlined),
                "[threads={threads}] extent rows diverge for {sql}"
            );
            assert!(with_mv.estimated_cost <= inlined.estimated_cost);
        }
    }
}

#[test]
fn extent_chosen_only_when_strictly_cheaper() {
    // Big data: the 30-row extent beats ~10 pages of emp.
    let mut big = big_session();
    big.execute(CREATE_DSAL).unwrap();
    let q = "select dno, sum(sal) from emp group by dno";
    let chosen = big.execute(q).unwrap();
    assert!(chosen.plan.contains("ExtentScan"));
    big.config.use_matviews = false;
    let inlined_cost = big.execute(q).unwrap().estimated_cost;
    assert!(
        chosen.estimated_cost < inlined_cost,
        "extent path must be strictly cheaper ({} vs {inlined_cost})",
        chosen.estimated_cost
    );

    // Tiny data: both plans cost one page. The strict `<` comparison
    // breaks the tie toward the inlined plan — the view is never taken
    // on a non-win.
    let mut tiny = tiny_session();
    tiny.execute(CREATE_DSAL).unwrap();
    let tied = tiny.execute(q).unwrap();
    assert!(
        !tied.plan.contains("ExtentScan"),
        "cost tie must keep the inlined plan:\n{}",
        tied.plan
    );
}

#[test]
fn incremental_maintenance_matches_from_scratch_refresh() {
    let mut s = big_session();
    s.execute(CREATE_DSAL).unwrap();

    // Incremental path: INSERT folds the delta into the stored
    // partial-aggregate state (new group 30, plus updates to group 0).
    let st = s
        .execute(
            "insert into emp values (9001, 'pat', 30, 1234.5, 25), \
                                    (9002, 'kim', 0, 800.0, 52), \
                                    (9003, 'ali', 0, 655.25, 19)",
        )
        .unwrap();
    assert!(st.rows[0]
        .get(0)
        .to_string()
        .contains("maintained views: dsal"));
    let extent = s.catalog().get("__mv_dsal").unwrap();
    let mut incremental: Vec<Tuple> = extent.rows().to_vec();
    incremental.sort();
    assert_eq!(incremental.len(), 31, "new department must appear");

    // From-scratch path over the same base data.
    s.execute("refresh materialized view dsal").unwrap();
    let extent = s.catalog().get("__mv_dsal").unwrap();
    let mut rebuilt: Vec<Tuple> = extent.rows().to_vec();
    rebuilt.sort();

    assert_eq!(incremental, rebuilt);
    assert!(!s.catalog().matview("dsal").unwrap().is_stale(s.catalog()));
}

/// Each unmatched query must (a) avoid the extent, (b) return the same
/// rows as the view-free configuration, and (c) produce a plan the
/// static analyzer accepts.
fn assert_falls_back(s: &mut Session, sql: &str, why: &str) {
    let (fallback, inlined) = with_and_without_mv(s, sql);
    assert!(
        !fallback.plan.contains("ExtentScan"),
        "{why}: matcher must not use the extent for {sql}:\n{}",
        fallback.plan
    );
    assert_eq!(
        sorted_rows(&fallback),
        sorted_rows(&inlined),
        "{why}: fallback rows diverge for {sql}"
    );
    let verdict = s.verify(sql).unwrap();
    assert_eq!(
        verdict.rows[0].get(0).to_string(),
        "ok",
        "{why}: fallback plan fails the analyzer: {:?}",
        verdict.rows
    );
}

#[test]
fn unmatched_blocks_fall_back_to_inlining() {
    let mut s = big_session();
    s.execute(CREATE_DSAL).unwrap();

    // Grouping column `age` is absent from the view: the extent has
    // already collapsed it away.
    assert_falls_back(
        &mut s,
        "select dno, age, count(*) from emp group by dno, age",
        "extra grouping column",
    );
    // STDDEV is not decomposable — the extent stores no partial state
    // it could be finished from.
    assert_falls_back(
        &mut s,
        "select dno, stddev(sal) from emp group by dno",
        "non-decomposable aggregate",
    );
    // `age` was projected away by the view, so the residual predicate
    // cannot be evaluated against the extent.
    assert_falls_back(
        &mut s,
        "select dno, sum(sal) from emp where age < 25 group by dno",
        "predicate on projected-away column",
    );
}
