//! Integration tests for the plan-integrity analyzer:
//!
//! 1. **corpus acceptance** — every plan the optimizer emits, across
//!    example queries, configurations and memory budgets, passes every
//!    analyzer rule (including cost-annotation sanity);
//! 2. **mutation rejection** — every applicable seeded mutation of a
//!    valid plan is rejected, covering all twelve mutation kinds;
//! 3. **targeted rules** — hand-built plans that violate exactly one of
//!    the pull-up key rule (Definition 1), the invariant-grouping
//!    key-join condition, the coalescing merge-stage identity
//!    (Figure 2), the degraded-plan shape, or cost sanity;
//! 4. **property** — analyzer-accepted plans execute without
//!    `plan-invalid` at 1 and 4 executor threads, over randomized
//!    databases;
//! 5. **SQL surface** — `EXPLAIN VERIFY` and `Session::verify` report
//!    the analyzer verdict.

use aggview::common::{
    AggFunc, AggRef, AggSpec, CmpOp, Col, Expr, Predicate, RelId, Value, ViewId,
};
use aggview::core::analyze::mutate::mutants;
use aggview::core::cost::ops::IoParams;
use aggview::core::plan::{all_cols, PartialAggSpec};
use aggview::core::query::examples::{
    dept, emp, example1_query, example2_query, example2_wide_query,
};
use aggview::core::query::{CanonicalQuery, QueryEnv, TopGroup};
use aggview::core::{
    optimize, optimize_governed, CostModel, GroupBySpec, JoinAlgo, OptimizerConfig,
    PartialGroupSpec, Plan, PlanAnalyzer, PullUpLevel, ResourceGovernor, ResourceLimits,
};
use aggview::executor::{Engine, ExecOptions};
use aggview::sql::Session;
use aggview::storage::datagen::{gen_empdept, EmpDeptConfig};
use aggview::storage::Catalog;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn catalog() -> Catalog {
    gen_empdept(&EmpDeptConfig::default()).unwrap()
}

fn model(mem: f64) -> CostModel {
    CostModel {
        io: IoParams {
            mem_pages: mem,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn configs() -> Vec<OptimizerConfig> {
    vec![
        OptimizerConfig::traditional(),
        OptimizerConfig::push_down_only(),
        OptimizerConfig {
            pull_up: PullUpLevel::Limited(1),
            ..Default::default()
        },
        OptimizerConfig::default(),
    ]
}

fn scan_emp(rel: RelId) -> Plan {
    Plan::scan(rel, "emp", vec![], all_cols(rel, 5))
}

fn scan_dept(rel: RelId) -> Plan {
    Plan::scan(rel, "dept", vec![], all_cols(rel, 4))
}

/// A two-phase (simple coalescing grouping) plan over one emp relation:
/// a partial SUM(sal) per dno, coalesced by a merge group-by above.
fn coalescing_plan() -> Plan {
    let mut env = QueryEnv::default();
    let e = env.add_rel("emp");
    let aref = AggRef::new(ViewId::Top, 0);
    let agg = AggSpec::new(AggFunc::Sum, Expr::col(Col::base(e, emp::SAL)));
    let partial = Plan::partial_group_by_all(
        scan_emp(e),
        PartialGroupSpec {
            group_cols: vec![Col::base(e, emp::DNO)],
            aggs: vec![(aref, agg.clone())],
        },
    );
    Plan::group_by_all(
        partial,
        GroupBySpec {
            owner: ViewId::Top,
            group_cols: vec![Col::base(e, emp::DNO)],
            aggs: vec![agg],
            having: vec![],
        },
    )
}

/// An emp ⋈ dept plan aggregated above the join, with an aggregate
/// HAVING predicate — the shape the HAVING-motion mutations need.
fn having_join_plan() -> Plan {
    let mut env = QueryEnv::default();
    let e = env.add_rel("emp");
    let d = env.add_rel("dept");
    let join = Plan::join_all(
        scan_emp(e),
        scan_dept(d),
        vec![Predicate::eq_cols(
            Col::base(e, emp::DNO),
            Col::base(d, dept::DNO),
        )],
    );
    Plan::group_by_all(
        join,
        GroupBySpec {
            owner: ViewId::Top,
            group_cols: vec![Col::base(e, emp::DNO)],
            aggs: vec![AggSpec::new(
                AggFunc::Avg,
                Expr::col(Col::base(e, emp::SAL)),
            )],
            having: vec![Predicate::cmp_const(
                Col::agg(ViewId::Top, 0),
                CmpOp::Gt,
                Value::Float(0.0),
            )],
        },
    )
}

/// Example 1's view group-by pulled above the join with `e1` (the
/// outer emp), grouping on `extra` in addition to the view's `e2.dno`.
/// Definition 1 requires `e1`'s key among the grouping columns.
fn pulled_plan(extra: Option<Col>) -> Plan {
    let e1 = RelId(0);
    let e2 = RelId(1);
    let join = Plan::join_all(
        scan_emp(e1),
        scan_emp(e2),
        vec![Predicate::eq_cols(
            Col::base(e1, emp::DNO),
            Col::base(e2, emp::DNO),
        )],
    );
    let mut group_cols = vec![Col::base(e2, emp::DNO)];
    group_cols.extend(extra);
    Plan::group_by_all(
        join,
        GroupBySpec {
            owner: ViewId::View(0),
            group_cols,
            aggs: vec![AggSpec::new(
                AggFunc::Avg,
                Expr::col(Col::base(e2, emp::SAL)),
            )],
            having: vec![],
        },
    )
}

fn rules_fired(report: &aggview::core::AnalysisReport) -> BTreeSet<&'static str> {
    report.violations.iter().map(|v| v.rule).collect()
}

/// A self-join aggregate query whose optimized plan (under a tight
/// memory budget and a large catalog) contains an eager
/// partial-aggregate below the join — the shape the three eager
/// mutation kinds need.
fn eager_selfjoin_query() -> CanonicalQuery {
    let mut env = QueryEnv::default();
    let e1 = env.add_rel("emp");
    let e2 = env.add_rel("emp");
    CanonicalQuery {
        env,
        views: vec![],
        base_rels: vec![e1, e2],
        preds: vec![Predicate::eq_cols(
            Col::base(e1, emp::DNO),
            Col::base(e2, emp::DNO),
        )],
        group: Some(TopGroup {
            group_cols: vec![Col::base(e1, emp::DNO)],
            aggs: vec![
                AggSpec::new(AggFunc::Avg, Expr::col(Col::base(e1, emp::AGE))),
                AggSpec::new(AggFunc::Min, Expr::col(Col::base(e2, emp::SAL))),
                AggSpec::new(AggFunc::Sum, Expr::col(Col::base(e2, emp::AGE))),
            ],
            having: vec![],
        }),
        projection: vec![
            Col::base(e1, emp::DNO),
            Col::agg(ViewId::Top, 0),
            Col::agg(ViewId::Top, 1),
            Col::agg(ViewId::Top, 2),
        ],
    }
}

/// A hand-built eager plan with *two* pushed keys (a grouping column of
/// the pushed side plus its join key): partial SUM(e2.sal) with the
/// duplicate-factor count below the join, scaled merge above. The
/// eager-drop-pushed-key mutation needs the second key.
fn eager_plan() -> Plan {
    let e1 = RelId(0);
    let e2 = RelId(1);
    let partial = Plan::partial_aggregate_all(
        scan_emp(e2),
        PartialAggSpec {
            group_cols: vec![Col::base(e2, emp::AGE), Col::base(e2, emp::DNO)],
            aggs: vec![(
                AggRef::new(ViewId::Top, 1),
                AggSpec::new(AggFunc::Sum, Expr::col(Col::base(e2, emp::SAL))),
            )],
            count: Some(AggRef::new(ViewId::Top, 2)),
        },
    );
    let join = Plan::join_all(
        partial,
        scan_emp(e1),
        vec![Predicate::eq_cols(
            Col::base(e1, emp::DNO),
            Col::base(e2, emp::DNO),
        )],
    );
    Plan::group_by_all(
        join,
        GroupBySpec {
            owner: ViewId::Top,
            group_cols: vec![Col::base(e1, emp::DNO), Col::base(e2, emp::AGE)],
            aggs: vec![
                AggSpec::new(AggFunc::Avg, Expr::col(Col::base(e1, emp::SAL))),
                AggSpec::new(AggFunc::Sum, Expr::col(Col::base(e2, emp::SAL))),
            ],
            having: vec![],
        },
    )
}

fn contains_partial_aggregate(p: &Plan) -> bool {
    match p {
        Plan::PartialAggregate { .. } => true,
        Plan::Join { left, right, .. } => {
            contains_partial_aggregate(left) || contains_partial_aggregate(right)
        }
        Plan::GroupBy { input, .. } | Plan::PartialGroupBy { input, .. } => {
            contains_partial_aggregate(input)
        }
        Plan::Scan { .. } | Plan::ExtentScan { .. } | Plan::EmptyScan { .. } => false,
    }
}

#[test]
fn analyzer_accepts_every_corpus_plan() {
    let catalog = catalog();
    let queries = [example1_query(), example2_query(), example2_wide_query()];
    let mut accepted = 0usize;
    let mut total = 0usize;
    for mem in [4.0, 256.0] {
        let m = model(mem);
        for q in &queries {
            for cfg in configs() {
                let opt = optimize(q, &catalog, m, &cfg).unwrap();
                let report = PlanAnalyzer::new(&catalog)
                    .with_query(q)
                    .with_model(m)
                    .analyze(&opt.plan);
                total += 1;
                assert!(
                    report.is_ok(),
                    "corpus plan rejected under {cfg:?}:\n{report}{}",
                    opt.plan.explain()
                );
                accepted += 1;
            }
        }
    }
    assert_eq!(accepted, total, "analyzer must accept 100% of the corpus");
}

#[test]
fn analyzer_rejects_every_seeded_mutant() {
    let catalog = catalog();
    let m = model(64.0);
    let mut kinds = BTreeSet::new();
    let mut total = 0usize;

    // Mutants of real optimizer outputs, checked with full query context.
    let queries = [example1_query(), example2_query(), example2_wide_query()];
    for q in &queries {
        for cfg in configs() {
            let opt = optimize(q, &catalog, m, &cfg).unwrap();
            for mt in mutants(&opt.plan) {
                total += 1;
                let report = PlanAnalyzer::new(&catalog).with_query(q).analyze(&mt.plan);
                assert!(
                    !report.is_ok(),
                    "mutant `{}` accepted:\n{}",
                    mt.name,
                    mt.plan.explain()
                );
                kinds.insert(mt.name);
            }
        }
    }

    // Hand-built shapes covering mutation kinds the optimizer corpus may
    // not exhibit (coalescing stages, aggregate HAVING above a join);
    // these only need the catalog-level rules.
    for plan in [coalescing_plan(), having_join_plan(), eager_plan()] {
        let base = PlanAnalyzer::new(&catalog).analyze(&plan);
        assert!(base.is_ok(), "unmutated shape rejected:\n{base}");
        for mt in mutants(&plan) {
            total += 1;
            let report = PlanAnalyzer::new(&catalog).analyze(&mt.plan);
            assert!(
                !report.is_ok(),
                "mutant `{}` accepted:\n{}",
                mt.name,
                mt.plan.explain()
            );
            kinds.insert(mt.name);
        }
    }

    // An eager (partial-aggregate-below-join) optimizer output: the
    // three eager mutation kinds only apply to this shape.
    let big = gen_empdept(&EmpDeptConfig {
        n_depts: 200,
        emps_per_dept: 100,
        young_fraction: 0.3,
        low_budget_fraction: 0.3,
        seed: 12,
    })
    .unwrap();
    let eq = eager_selfjoin_query();
    let cfg = OptimizerConfig {
        use_eager_agg: true,
        ..Default::default()
    };
    let opt = optimize(&eq, &big, m, &cfg).unwrap();
    assert!(
        contains_partial_aggregate(&opt.plan),
        "eager shape missing from the mutation corpus:\n{}",
        opt.plan.explain()
    );
    let base = PlanAnalyzer::new(&big).with_query(&eq).analyze(&opt.plan);
    assert!(base.is_ok(), "unmutated eager plan rejected:\n{base}");
    for mt in mutants(&opt.plan) {
        total += 1;
        let report = PlanAnalyzer::new(&big).with_query(&eq).analyze(&mt.plan);
        assert!(
            !report.is_ok(),
            "mutant `{}` accepted:\n{}",
            mt.name,
            mt.plan.explain()
        );
        kinds.insert(mt.name);
    }

    let all_kinds: BTreeSet<&str> = [
        "drop-group-col",
        "move-having-below",
        "swap-coalesce-func",
        "drop-partial-component",
        "drop-join-input-col",
        "overlap-join-children",
        "rename-scan-table",
        "agg-arg-unavailable",
        "group-on-unavailable",
        "having-foreign-column",
        "nonlocal-scan-filter",
        "join-pred-unavailable",
        "eager-drop-pushed-key",
        "eager-drop-count",
        "eager-component-lie",
    ]
    .into_iter()
    .collect();
    assert_eq!(
        kinds, all_kinds,
        "every mutation kind must apply somewhere in the corpus"
    );
    assert!(kinds.len() >= 10, "need at least 10 distinct mutant kinds");
    assert!(total >= all_kinds.len());
}

#[test]
fn dataflow_mutants_are_flagged() {
    use aggview::common::DataType;
    use aggview::core::analyze::mutate::dataflow_mutants;
    use aggview::core::analyze::Severity;
    let catalog = catalog();
    let mut env = QueryEnv::default();
    let e = env.add_rel("emp");

    // A constant-false scan filter makes the subtree provably empty —
    // correct but wasteful, so it's a DF001 *warning*: the plan still
    // passes the gate but the finding is surfaced.
    let muts = dataflow_mutants(&scan_emp(e));
    let contradiction = muts
        .iter()
        .find(|m| m.name == "contradictory-filter")
        .expect("scan shape must admit the contradictory-filter mutant");
    let report = PlanAnalyzer::new(&catalog)
        .with_env(&env)
        .analyze(&contradiction.plan);
    assert!(report.is_ok(), "a warning must not reject:\n{report}");
    assert!(!report.is_clean(), "the contradiction must be surfaced");
    let v = report
        .violations
        .iter()
        .find(|v| v.rule == "dataflow-domain")
        .expect("expected a dataflow-domain finding");
    assert_eq!(v.code, "DF001");
    assert_eq!(v.severity, Severity::Warning);

    // Lies in an EmptyScan's recorded provenance are hard errors: a
    // type that contradicts the catalog schema (DF002) and a cover of
    // a relation the query never declared (DF003).
    let empty = Plan::empty_scan(
        vec![e],
        vec![Col::base(e, emp::ENO)],
        vec![DataType::Int],
        "test fixture",
    );
    let base = PlanAnalyzer::new(&catalog).with_env(&env).analyze(&empty);
    assert!(base.is_clean(), "unmutated EmptyScan flagged:\n{base}");
    let muts = dataflow_mutants(&empty);
    let kinds: BTreeSet<&str> = muts.iter().map(|m| m.name).collect();
    assert!(kinds.contains("empty-scan-type-lie"), "kinds: {kinds:?}");
    assert!(
        kinds.contains("empty-scan-phantom-cover"),
        "kinds: {kinds:?}"
    );
    for mt in &muts {
        let report = PlanAnalyzer::new(&catalog).with_env(&env).analyze(&mt.plan);
        assert!(
            !report.is_ok(),
            "mutant `{}` accepted:\n{}",
            mt.name,
            mt.plan.explain()
        );
    }
}

#[test]
fn pullup_without_the_joined_relations_key_is_rejected() {
    let catalog = catalog();
    let q = example1_query();
    let analyzer = PlanAnalyzer::new(&catalog);
    let analyzer = analyzer.with_query(&q);

    // Deferring the view's group-by past emp e1 without grouping on
    // e1's key multiplies e2 rows per matching e1 row — Definition 1's
    // exact counterexample.
    let bad = analyzer.analyze(&pulled_plan(None));
    assert!(
        rules_fired(&bad).contains("pull-up-key"),
        "expected a pull-up-key violation, got: {bad}"
    );

    // Adding e1's primary key (eno) to the grouping columns restores
    // Definition 1's condition.
    let good = analyzer.analyze(&pulled_plan(Some(Col::base(RelId(0), emp::ENO))));
    assert!(good.is_ok(), "legal pull-up rejected:\n{good}");
}

#[test]
fn non_key_join_above_the_top_group_by_is_rejected() {
    let catalog = catalog();
    let mut env = QueryEnv::default();
    let e = env.add_rel("emp");
    let other = env.add_rel("emp"); // swap to "dept" for the legal case below
    let grouped = Plan::group_by_all(
        scan_emp(e),
        GroupBySpec {
            owner: ViewId::Top,
            group_cols: vec![Col::base(e, emp::DNO)],
            aggs: vec![AggSpec::new(
                AggFunc::Avg,
                Expr::col(Col::base(e, emp::SAL)),
            )],
            having: vec![],
        },
    );

    // emp.dno is not a key of emp: several e2 rows match one group, so
    // the join is not invariant with respect to the grouping.
    let bad = Plan::join_all(
        grouped.clone(),
        scan_emp(other),
        vec![Predicate::eq_cols(
            Col::base(e, emp::DNO),
            Col::base(other, emp::DNO),
        )],
    );
    let report = PlanAnalyzer::new(&catalog).analyze(&bad);
    assert!(
        rules_fired(&report).contains("invariant-grouping"),
        "expected an invariant-grouping violation, got: {report}"
    );

    // dept.dno is dept's primary key: at most one dept row per group,
    // so joining above the group-by is legal (invariant grouping).
    let good = Plan::join_all(
        grouped,
        scan_dept(other),
        vec![Predicate::eq_cols(
            Col::base(e, emp::DNO),
            Col::base(other, dept::DNO),
        )],
    );
    let report = PlanAnalyzer::new(&catalog).analyze(&good);
    assert!(report.is_ok(), "legal key join rejected:\n{report}");
}

#[test]
fn partial_aggregation_requires_a_matching_merge_stage() {
    let catalog = catalog();
    let mut env = QueryEnv::default();
    let e = env.add_rel("emp");
    let aref = AggRef::new(ViewId::Top, 0);
    let partial = Plan::partial_group_by_all(
        scan_emp(e),
        PartialGroupSpec {
            group_cols: vec![Col::base(e, emp::DNO)],
            aggs: vec![(
                aref,
                AggSpec::new(AggFunc::Sum, Expr::col(Col::base(e, emp::SAL))),
            )],
        },
    );
    // A partial group-by with no merge group-by above leaks raw
    // partial states as the result — Figure 2 requires the second stage.
    let report = PlanAnalyzer::new(&catalog).analyze(&partial);
    assert!(
        rules_fired(&report).contains("coalescing-merge"),
        "expected a coalescing-merge violation, got: {report}"
    );

    // The full two-phase shape passes.
    let report = PlanAnalyzer::new(&catalog).analyze(&coalescing_plan());
    assert!(report.is_ok(), "legal coalescing plan rejected:\n{report}");
}

#[test]
fn degraded_plans_must_have_the_traditional_shape() {
    let catalog = catalog();
    let m = model(64.0);
    let q = example2_query();

    // A genuinely degraded optimization passes the stricter check.
    let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_plans(1));
    let opt = optimize_governed(&q, &catalog, m, &OptimizerConfig::default(), &gov).unwrap();
    assert!(opt.outcome.is_degraded(), "expected a degraded outcome");
    let report = PlanAnalyzer::new(&catalog)
        .with_query(&q)
        .analyze_degraded(&opt.plan);
    assert!(report.is_ok(), "degraded plan rejected:\n{report}");

    // A coalescing (partial-aggregation) plan is valid in general but
    // is not a traditional two-phase plan, so the degraded check
    // refuses it.
    let report = PlanAnalyzer::new(&catalog)
        .with_query(&q)
        .analyze_degraded(&coalescing_plan());
    assert!(
        rules_fired(&report).contains("degraded-shape"),
        "expected a degraded-shape violation, got: {report}"
    );
}

#[test]
fn unpriceable_joins_fail_cost_sanity() {
    let catalog = catalog();
    let mut env = QueryEnv::default();
    let e = env.add_rel("emp");
    let d = env.add_rel("dept");
    let left = scan_emp(e);
    let right = scan_dept(d);
    let mut project = left.output_cols().to_vec();
    project.extend_from_slice(right.output_cols());
    // A hash join demands an equality predicate; pricing this plan is
    // impossible, which the cost-sanity rule reports as a violation
    // instead of letting the analyzer error out.
    let plan = Plan::Join {
        algo: JoinAlgo::Hash,
        left: Box::new(left),
        right: Box::new(right),
        preds: vec![Predicate::new(
            Expr::col(Col::base(e, emp::SAL)),
            CmpOp::Gt,
            Expr::col(Col::base(d, dept::BUDGET)),
        )],
        project,
    };
    let report = PlanAnalyzer::new(&catalog)
        .with_env(&env)
        .with_model(model(64.0))
        .analyze(&plan);
    assert!(
        rules_fired(&report).contains("cost-sanity"),
        "expected a cost-sanity violation, got: {report}"
    );
}

#[test]
fn explain_verify_reports_the_analyzer_verdict() {
    let mut session = Session::new(catalog());
    let r = session
        .execute(
            "explain verify select e.dno, avg(e.sal) from emp e, dept d \
             where e.dno = d.dno group by e.dno;",
        )
        .unwrap();
    assert_eq!(r.columns, ["code", "severity", "rule", "finding"]);
    assert_eq!(r.rows.len(), 1);
    assert_eq!(*r.rows[0].get(0), Value::str("ok"));
    assert!(!r.plan.is_empty(), "the verdict should carry the plan");

    // The same surface through the programmatic entry point, across a
    // multi-statement script with a view definition.
    let r = session
        .verify(
            "create view a1(dno, asal) as \
               select e2.dno, avg(e2.sal) from emp e2 group by e2.dno; \
             select e1.sal from emp e1, a1 b \
              where e1.dno = b.dno and e1.age < 22 and e1.sal > b.asal;",
        )
        .unwrap();
    assert_eq!(*r.rows[0].get(0), Value::str("ok"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Analyzer-accepted plans execute cleanly — in particular the
    /// executor's hard `plan-invalid` gate never fires — serially and
    /// at four worker threads, over randomized databases.
    #[test]
    fn accepted_plans_execute_at_one_and_four_threads(
        n_depts in 2usize..40,
        emps_per_dept in 1usize..30,
        young_pct in 0u32..100,
        seed in 0u64..10_000,
        which in 0usize..3,
        cfg_i in 0usize..4,
    ) {
        let catalog = gen_empdept(&EmpDeptConfig {
            n_depts,
            emps_per_dept,
            young_fraction: young_pct as f64 / 100.0,
            low_budget_fraction: 0.4,
            seed,
        })
        .unwrap();
        let q = match which {
            0 => example1_query(),
            1 => example2_query(),
            _ => example2_wide_query(),
        };
        let m = model(64.0);
        let cfg = configs().swap_remove(cfg_i);
        let opt = optimize(&q, &catalog, m, &cfg).unwrap();
        let report = PlanAnalyzer::new(&catalog)
            .with_query(&q)
            .with_model(m)
            .analyze(&opt.plan);
        prop_assert!(report.is_ok(), "{report}{}", opt.plan.explain());
        for threads in [1usize, 4] {
            let engine = Engine::new(&catalog, &q.env, m).with_options(ExecOptions {
                threads,
                ..Default::default()
            });
            match engine.execute(&opt.plan) {
                Ok(_) => {}
                Err(e) => prop_assert!(
                    false,
                    "execution at {threads} thread(s) failed ({}): {}",
                    e.kind(),
                    e.message()
                ),
            }
        }
    }
}
