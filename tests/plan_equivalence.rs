//! Cross-crate integration: every optimizer configuration must produce
//! plans that execute to the same results, and transformed plans must be
//! equivalent to their sources (the paper's central correctness claims).

use aggview::core::cost::ops::IoParams;
use aggview::core::query::examples::{example1_query, example2_query, example2_wide_query};
use aggview::core::transform::pull_up;
use aggview::core::{optimize, CostModel, OptimizerConfig, Plan, PullUpLevel};
use aggview::executor::{assert_equivalent, Engine};
use aggview::storage::datagen::{gen_empdept, EmpDeptConfig};
use aggview::storage::Catalog;

fn catalog(n_depts: usize, emps: usize, young: f64, seed: u64) -> Catalog {
    gen_empdept(&EmpDeptConfig {
        n_depts,
        emps_per_dept: emps,
        young_fraction: young,
        low_budget_fraction: 0.4,
        seed,
    })
    .unwrap()
}

fn configs() -> Vec<(&'static str, OptimizerConfig)> {
    vec![
        ("traditional", OptimizerConfig::traditional()),
        ("push-down-only", OptimizerConfig::push_down_only()),
        (
            "pull-up-1",
            OptimizerConfig {
                pull_up: PullUpLevel::Limited(1),
                ..Default::default()
            },
        ),
        ("full", OptimizerConfig::default()),
    ]
}

fn models() -> Vec<CostModel> {
    vec![
        CostModel::default(),
        CostModel {
            io: IoParams {
                mem_pages: 4.0,
                ..Default::default()
            },
            ..Default::default()
        },
        CostModel {
            io: IoParams {
                mem_pages: 1024.0,
                ..Default::default()
            },
            ..Default::default()
        },
    ]
}

#[test]
fn example1_all_configs_agree_on_results() {
    for (i, cat) in [
        catalog(30, 8, 0.2, 1),
        catalog(5, 40, 0.5, 2),
        catalog(60, 3, 0.05, 3),
    ]
    .iter()
    .enumerate()
    {
        let q = example1_query();
        for model in models() {
            let engine = Engine::new(cat, &q.env, model);
            let baseline = optimize(&q, cat, model, &OptimizerConfig::traditional()).unwrap();
            let base_rs = engine.execute(&baseline.plan).unwrap();
            assert!(!base_rs.rows.is_empty(), "catalog {i} yields matches");
            for (name, cfg) in configs() {
                let opt = optimize(&q, cat, model, &cfg).unwrap();
                opt.plan.validate(cat, &q.env.rel_tables).unwrap();
                let rs = engine.execute(&opt.plan).unwrap();
                assert_equivalent(&base_rs, &rs).unwrap_or_else(|e| {
                    panic!("catalog {i} config {name}: {e}\n{}", opt.plan.explain())
                });
            }
        }
    }
}

#[test]
fn example2_all_configs_agree_on_results() {
    for cat in [catalog(20, 10, 0.2, 4), catalog(8, 100, 0.1, 5)] {
        let q = example2_query();
        for model in models() {
            let engine = Engine::new(&cat, &q.env, model);
            let baseline = optimize(&q, &cat, model, &OptimizerConfig::traditional()).unwrap();
            let base_rs = engine.execute(&baseline.plan).unwrap();
            for (name, cfg) in configs() {
                let opt = optimize(&q, &cat, model, &cfg).unwrap();
                let rs = engine.execute(&opt.plan).unwrap();
                assert_equivalent(&base_rs, &rs)
                    .unwrap_or_else(|e| panic!("config {name}: {e}\n{}", opt.plan.explain()));
            }
        }
    }
}

/// The FD-based push-down (grouping columns of the key-joined relation
/// attached after the group-by) must preserve results exactly.
#[test]
fn example2_wide_all_configs_agree_on_results() {
    for cat in [catalog(40, 12, 0.2, 8), catalog(300, 60, 0.1, 9)] {
        let q = example2_wide_query();
        for model in models() {
            let engine = Engine::new(&cat, &q.env, model);
            let baseline = optimize(&q, &cat, model, &OptimizerConfig::traditional()).unwrap();
            let base_rs = engine.execute(&baseline.plan).unwrap();
            assert!(!base_rs.rows.is_empty());
            for (name, cfg) in configs() {
                let opt = optimize(&q, &cat, model, &cfg).unwrap();
                let rs = engine.execute(&opt.plan).unwrap();
                assert_equivalent(&base_rs, &rs)
                    .unwrap_or_else(|e| panic!("config {name}: {e}\n{}", opt.plan.explain()));
            }
        }
    }
}

#[test]
fn never_worse_guarantee_estimated_cost() {
    for seed in 0..6u64 {
        let cat = catalog(
            10 + (seed as usize) * 13,
            5 + (seed as usize) * 9,
            0.1 + seed as f64 * 0.1,
            seed,
        );
        for q in [example1_query(), example2_query()] {
            for model in models() {
                let full = optimize(&q, &cat, model, &OptimizerConfig::default()).unwrap();
                let trad = optimize(&q, &cat, model, &OptimizerConfig::traditional()).unwrap();
                assert!(
                    full.props.cost <= trad.props.cost + 1e-6,
                    "seed {seed}: full {} > traditional {}",
                    full.props.cost,
                    trad.props.cost
                );
            }
        }
    }
}

/// Definition 1 as an executable statement: P1 ≡ pull_up(P1), on the
/// optimizer-produced traditional plan for Example 1 (a join over a
/// group-by).
#[test]
fn pull_up_transformation_preserves_results() {
    let cat = catalog(12, 6, 0.3, 7);
    let q = example1_query();
    let model = CostModel::default();
    let trad = optimize(&q, &cat, model, &OptimizerConfig::traditional()).unwrap();
    // Find the join-over-group-by node (the traditional plan's root or
    // just below it).
    fn find_join_over_gb(p: &Plan) -> Option<&Plan> {
        match p {
            Plan::Join { left, right, .. } => {
                if matches!(left.as_ref(), Plan::GroupBy { .. })
                    || matches!(right.as_ref(), Plan::GroupBy { .. })
                {
                    Some(p)
                } else {
                    find_join_over_gb(left).or_else(|| find_join_over_gb(right))
                }
            }
            Plan::GroupBy { input, .. }
            | Plan::PartialGroupBy { input, .. }
            | Plan::PartialAggregate { input, .. } => find_join_over_gb(input),
            Plan::Scan { .. } | Plan::ExtentScan { .. } | Plan::EmptyScan { .. } => None,
        }
    }
    let j1 = find_join_over_gb(&trad.plan).expect("traditional plan joins the view");
    // The optimizer projects scans narrowly, which can drop the key
    // pull-up needs; widen the non-grouped side to the full table (the
    // paper's "internal tuple id" fallback corresponds to keeping the
    // declared key visible).
    let j1 = {
        let Plan::Join {
            algo,
            left,
            right,
            preds,
            project,
        } = j1.clone()
        else {
            unreachable!()
        };
        let widen = |p: Box<Plan>| -> Box<Plan> {
            match *p {
                Plan::Scan {
                    rel,
                    table,
                    filters,
                    ..
                } => {
                    let arity = cat.get(&table).unwrap().schema().len();
                    Box::new(Plan::scan(
                        rel,
                        table,
                        filters,
                        aggview::core::plan::all_cols(rel, arity),
                    ))
                }
                other => Box::new(other),
            }
        };
        Plan::Join {
            algo,
            left: widen(left),
            right: widen(right),
            preds,
            project,
        }
    };
    let j1 = &j1;
    let p2 = pull_up(j1, &cat).unwrap();
    p2.validate(&cat, &q.env.rel_tables).unwrap();
    let engine = Engine::new(&cat, &q.env, model);
    let a = engine.execute(j1).unwrap();
    let b = engine.execute(&p2).unwrap();
    assert_equivalent(&a, &b).unwrap_or_else(|e| {
        panic!(
            "pull-up changed results: {e}\nP1:\n{}\nP2:\n{}",
            j1.explain(),
            p2.explain()
        )
    });
}
