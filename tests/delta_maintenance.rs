//! Differential tests for streaming delta maintenance: randomized
//! mixed INSERT/UPDATE/DELETE batches applied through the SQL frontend
//! must leave every materialized view's extent **byte-identical** to a
//! from-scratch `REFRESH MATERIALIZED VIEW`, at 1 and 4 executor
//! threads.
//!
//! All salaries are multiples of 0.5, so float SUM/AVG arithmetic is
//! exact and "byte-identical" is a meaningful bar (with arbitrary
//! floats, incremental subtraction and refresh re-summation may differ
//! in the last ulp — see DESIGN.md §16).
//!
//! The op mix deliberately covers the hard retraction cases: deleting a
//! department wholesale (group deletion — the extent row must vanish),
//! deleting the youngest/cheapest rows (MIN/MAX extremum retraction →
//! targeted recompute), and UPDATEs that move rows between groups
//! (simultaneous retraction from one group and insertion into another).

use aggview::sql::Session;
use aggview::storage::{Catalog, Table};
use aggview::{DataType, Schema, Tuple, Value};
use proptest::prelude::*;

const N_DEPTS: i64 = 4;

/// Binary-exact starting data: 4 departments × 6 employees, salaries
/// multiples of 12.5, even slots young (age < 30).
fn seed_catalog() -> Catalog {
    let cat = Catalog::new();
    let mut e = Table::builder(
        "emp",
        Schema::of(&[
            ("eno", DataType::Int),
            ("name", DataType::Str),
            ("dno", DataType::Int),
            ("sal", DataType::Float),
            ("age", DataType::Int),
        ]),
    )
    .primary_key(&["eno"])
    .unwrap();
    let mut eno = 0i64;
    for dno in 0..N_DEPTS {
        for k in 0..6i64 {
            let sal = 1000.0 + (dno * 6 + k) as f64 * 12.5;
            let age = if k % 2 == 0 { 21 + k } else { 31 + k };
            e.push(Tuple::new(vec![
                Value::Int(eno),
                Value::Str(format!("p{eno}").into()),
                Value::Int(dno),
                Value::Float(sal),
                Value::Int(age),
            ]))
            .unwrap();
            eno += 1;
        }
    }
    cat.add(e.build().unwrap()).unwrap();
    cat
}

const VIEWS: &[(&str, &str)] = &[
    (
        "vsum",
        "create materialized view vsum(dno, total, n) as \
         select dno, sum(sal), count(*) from emp group by dno",
    ),
    (
        "vrange",
        "create materialized view vrange(dno, lo, hi, n) as \
         select dno, min(sal), max(sal), count(*) from emp group by dno",
    ),
    (
        "vyoung",
        "create materialized view vyoung(dno, avgsal) as \
         select dno, avg(sal) from emp where age < 30 group by dno",
    ),
];

fn extent_rows(s: &Session, view: &str) -> Vec<Tuple> {
    let ext = aggview::storage::MatViewMeta::extent_name(view);
    let mut rows = match s.catalog().get(&ext) {
        Ok(t) => t.rows().to_vec(),
        Err(_) => Vec::new(),
    };
    rows.sort();
    rows
}

/// xorshift64*: deterministic op generator, independent of any RNG
/// crate surface.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e3779b97f4a7c15);
        self.0 = x;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One random DML statement. Salaries stay multiples of 0.5.
fn random_dml(rng: &mut Rng, next_eno: &mut i64) -> String {
    let dno = rng.below(N_DEPTS as u64) as i64;
    match rng.below(6) {
        0 | 1 => {
            let eno = *next_eno;
            *next_eno += 1;
            let sal = 500.0 + rng.below(200) as f64 * 12.5;
            let age = 18 + rng.below(40) as i64;
            format!("insert into emp values ({eno}, 'n{eno}', {dno}, {sal:?}, {age})")
        }
        2 => format!("update emp set sal = sal + 12.5 where dno = {dno}"),
        3 => {
            let to = (dno + 1) % N_DEPTS;
            format!("update emp set dno = {to}, age = age + 1 where dno = {dno} and age < 30")
        }
        4 => format!("delete from emp where dno = {dno}"),
        5 => {
            let cutoff = 20 + rng.below(15) as i64;
            format!("delete from emp where dno = {dno} and age < {cutoff}")
        }
        _ => unreachable!(),
    }
}

/// Apply `rounds` random DML statements; after every one, the
/// incrementally maintained extent of each view must equal the extent
/// a full refresh rebuilds.
fn run_differential(seed: u64, rounds: usize, threads: usize) {
    let mut s = Session::new(seed_catalog());
    s.exec.threads = threads;
    for (_, create) in VIEWS {
        s.execute(create).unwrap();
    }
    let mut rng = Rng(seed);
    let mut next_eno = 10_000i64;
    for round in 0..rounds {
        let sql = random_dml(&mut rng, &mut next_eno);
        s.execute(&sql).unwrap();
        for (view, _) in VIEWS {
            let meta = s.catalog().matview(view).unwrap();
            assert!(
                !meta.is_stale(s.catalog()),
                "round {round} `{sql}` left {view} stale"
            );
            let incremental = extent_rows(&s, view);
            s.execute(&format!("refresh materialized view {view}"))
                .unwrap();
            let refreshed = extent_rows(&s, view);
            assert_eq!(
                incremental, refreshed,
                "round {round} `{sql}`: incremental extent of {view} \
                 diverged from refresh (threads={threads})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Incremental maintenance is byte-identical to refresh across
    /// randomized mixed-DML histories, single-threaded.
    #[test]
    fn mixed_dml_matches_refresh_1_thread(seed in 0u64..1_000_000) {
        run_differential(seed, 10, 1);
    }

    /// Same property with the 4-thread morsel-driven executor: partial
    /// folds race across workers, but the merged extent must still be
    /// exact.
    #[test]
    fn mixed_dml_matches_refresh_4_threads(seed in 0u64..1_000_000) {
        run_differential(seed, 10, 4);
    }
}

/// A directed history that forces every retraction edge in one run:
/// extremum deletion, whole-group deletion, cross-group moves, and a
/// re-insert into a previously emptied group.
#[test]
fn directed_retraction_gauntlet() {
    for threads in [1usize, 4] {
        let mut s = Session::new(seed_catalog());
        s.exec.threads = threads;
        for (_, create) in VIEWS {
            s.execute(create).unwrap();
        }
        let history = [
            "delete from emp where dno = 0 and sal <= 1012.5", // min extremum out
            "update emp set sal = sal + 500.0 where dno = 1",  // max shifts
            "update emp set dno = 2, age = age + 1 where dno = 1 and age < 30",
            "delete from emp where dno = 3", // group gone
            "insert into emp values (7777, 'back', 3, 2000.5, 24)", // group reborn
            "update emp set dno = 0 where dno = 3", // gone again
        ];
        for sql in history {
            s.execute(sql).unwrap();
            for (view, _) in VIEWS {
                let incremental = extent_rows(&s, view);
                s.execute(&format!("refresh materialized view {view}"))
                    .unwrap();
                assert_eq!(
                    incremental,
                    extent_rows(&s, view),
                    "`{sql}` diverged for {view} at threads={threads}"
                );
            }
        }
        // dept 3 was emptied twice: its extent rows must be gone.
        assert!(!extent_rows(&s, "vsum")
            .iter()
            .any(|r| r.get(0) == &Value::Int(3)));
    }
}
