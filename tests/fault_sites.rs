//! Fault-site registry discipline: the registry itself must be
//! unambiguous (no duplicates, no entry shadowing another through the
//! dot-prefix resolution rule), and a representative workload must
//! consult every registered site — so a site cannot rot in the registry
//! while its call site silently disappears, and a new call site cannot
//! ship without registering.

use aggview::common::ids::AggRef;
use aggview::common::{registered_site, RecordingFaults, REGISTERED_FAULT_SITES};
use aggview::core::governor::ResourceGovernor;
use aggview::core::plan::{all_cols, GroupBySpec, PartialGroupSpec, Plan};
use aggview::core::query::examples::{dept, emp};
use aggview::core::query::QueryEnv;
use aggview::core::CostModel;
use aggview::executor::Engine;
use aggview::storage::datagen::{gen_empdept, EmpDeptConfig};
use aggview::storage::Catalog;
use aggview::{AggFunc, AggSpec, Col, Expr, Predicate, RelId, ViewId};
use std::sync::Arc;

#[test]
fn registry_is_unique_and_unambiguous() {
    for (i, a) in REGISTERED_FAULT_SITES.iter().enumerate() {
        for (j, b) in REGISTERED_FAULT_SITES.iter().enumerate() {
            if i == j {
                continue;
            }
            assert_ne!(a, b, "duplicate registry entry");
            assert!(
                !(b.starts_with(a) && b.as_bytes().get(a.len()) == Some(&b'.')),
                "`{b}` is shadowed by `{a}` under dot-prefix resolution"
            );
        }
    }
    // Every entry resolves to itself, both exactly and with a suffix.
    for &site in REGISTERED_FAULT_SITES {
        assert_eq!(registered_site(site), Some(site));
        assert_eq!(registered_site(&format!("{site}.suffix")), Some(site));
    }
    // Non-sites and non-dot extensions do not resolve.
    assert_eq!(registered_site("exec.nonsense"), None);
    assert_eq!(registered_site("wal.appendix"), None);
}

#[test]
fn representative_workload_consults_every_registered_site() {
    let rec = Arc::new(RecordingFaults::new());

    // Execution-time sites: a plan with a scan under a partial
    // group-by, joined, then coalesced by a final group-by touches
    // every operator entry the registry names.
    let catalog = gen_empdept(&EmpDeptConfig {
        n_depts: 5,
        emps_per_dept: 10,
        ..Default::default()
    })
    .unwrap();
    let env = QueryEnv::new(vec!["emp".into(), "dept".into()]);
    let engine = Engine::new(&catalog, &env, CostModel::default());
    let agg = AggSpec::new(AggFunc::Sum, Expr::col(Col::base(RelId(0), emp::SAL)));
    let plan = Plan::group_by_all(
        Plan::join_all(
            Plan::partial_group_by_all(
                Plan::scan(RelId(0), "emp", vec![], all_cols(RelId(0), 5)),
                PartialGroupSpec {
                    group_cols: vec![Col::base(RelId(0), emp::DNO)],
                    aggs: vec![(AggRef::new(ViewId::Top, 0), agg.clone())],
                },
            ),
            Plan::scan(RelId(1), "dept", vec![], all_cols(RelId(1), 4)),
            vec![Predicate::eq_cols(
                Col::base(RelId(0), emp::DNO),
                Col::base(RelId(1), dept::DNO),
            )],
        ),
        GroupBySpec {
            owner: ViewId::Top,
            group_cols: vec![Col::base(RelId(0), emp::DNO)],
            aggs: vec![agg],
            having: vec![],
        },
    );
    engine
        .execute_governed(&plan, &ResourceGovernor::unlimited(), Some(rec.as_ref()))
        .unwrap();

    // Durability sites: one logged mutation (append + fsync) and one
    // checkpoint (snapshot write/fsync/rename + WAL truncation).
    let dir = std::env::temp_dir().join(format!("aggview-sites-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable = Catalog::open_with_faults(&dir, rec.clone()).unwrap();
    durable
        .add(catalog.get("dept").unwrap())
        .and_then(|()| durable.checkpoint())
        .unwrap();
    drop(durable);
    std::fs::remove_dir_all(&dir).unwrap();

    let consulted = rec.sites();
    // Completeness: every registered site was consulted.
    for &site in REGISTERED_FAULT_SITES {
        assert!(
            consulted.iter().any(|c| registered_site(c) == Some(site)),
            "registered site `{site}` never consulted; saw {consulted:?}"
        );
    }
    // Soundness: every consulted site resolves to a registered entry.
    for c in &consulted {
        assert!(
            registered_site(c).is_some(),
            "unregistered fault site consulted: `{c}` — add it to REGISTERED_FAULT_SITES"
        );
    }
}
