//! # aggview — Optimizing Queries with Aggregate Views
//!
//! A from-scratch Rust reproduction of Chaudhuri & Shim, *Optimizing
//! Queries with Aggregate Views* (EDBT 1996): cost-based optimization of
//! multi-block SQL queries whose blocks are aggregate views (SPJ +
//! GROUP BY/HAVING), built on the paper's two transformation families —
//! **pull-up** (defer a view's group-by past joins, enabling reordering
//! across query blocks) and **push-down** (invariant grouping and simple
//! coalescing grouping, performing aggregation early) — embedded in a
//! Selinger-style dynamic-programming enumerator with the *greedy
//! conservative heuristic*.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`common`] — values, schemas, expressions, predicates, aggregates;
//! * [`storage`] — tables, catalog, keys, statistics, data generators;
//! * [`executor`] — volcano-style execution with page-IO accounting;
//! * [`core`] — the paper's contribution: transformations, cost model,
//!   and optimization algorithms;
//! * [`sql`] — SQL frontend and nested-subquery flattening;
//! * [`mod@bench`] — the experiment harness, including the executor
//!   throughput/scaling benchmark behind the `bench` binary and the
//!   REPL's `.bench` command.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end tour: build a catalog,
//! state the paper's Example 1 as SQL, optimize it with and without
//! pull-up, and execute both plans.

#![forbid(unsafe_code)]

pub use aggview_bench as bench;
pub use aggview_common as common;
pub use aggview_core as core;
pub use aggview_executor as executor;
pub use aggview_sql as sql;
pub use aggview_storage as storage;

pub use aggview_common::{
    AggFunc, AggSpec, AggViewError, CmpOp, Col, ColRef, DataType, Expr, Predicate, RelId, Result,
    Schema, Tuple, Value, ViewId,
};
