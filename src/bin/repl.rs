//! `aggview-repl` — an interactive shell for the aggregate-view
//! optimizer.
//!
//! ```text
//! $ cargo run --bin repl
//! aggview> .gen empdept 50 20
//! aggview> create view A1(dno, Asal) as
//!          select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
//! aggview> select e1.sal from emp e1, A1 b
//!          where e1.dno = b.dno and e1.age < 22 and e1.sal > b.Asal;
//! aggview> .explain select dno, count(*) from emp group by dno;
//! ```
//!
//! Dot-commands: `.help`, `.tables`, `.views`, `.stats <table>`,
//! `.gen empdept [depts emps_per_dept]`,
//! `.gen star [customers]`, `.mem <pages>`, `.mode <traditional|pushdown|full>`,
//! `.set <key> <value>` (resource governance: `timeout_ms`, `max_rows`,
//! `max_bytes`, `max_plans`, `max_memo`, `retries`; `off` clears a limit;
//! plus `threads`, `batch_rows` and `exec_mode <row|batch>` for the
//! executor), `.limits`,
//! `.bench [threads]` (executor scaling benchmark), `.explain <sql>`,
//! `.open <dir>` (durable catalog: WAL + checkpoints), `.checkpoint`,
//! `.subscribe <view>` / `.unsubscribe <view>` (live view-change feed:
//! after every statement the REPL drains and prints the consolidated
//! created/updated/deleted events of each maintenance round),
//! `.deps` (the table → materialized-view dependency graph),
//! `.quit`. Everything else is SQL (`;`-terminated, may span lines).

use aggview::bench::exec_bench::{run_exec_bench, ExecBenchConfig};
use aggview::core::cost::ops::IoParams;
use aggview::core::{CostModel, OptimizerConfig};
use aggview::sql::Session;
use aggview::storage::datagen::{gen_empdept, gen_star, EmpDeptConfig, StarConfig};
use std::io::{self, BufRead, Write};
use std::time::Duration;

fn main() {
    let mut session =
        Session::new(gen_empdept(&EmpDeptConfig::default()).expect("default catalog"));
    println!(
        "aggview repl — default Emp/Dept catalog loaded ({} tables). Type .help",
        session.catalog().len()
    );

    let stdin = io::stdin();
    let mut buffer = String::new();
    prompt(&buffer);
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !dot_command(trimmed, &mut session) {
                break;
            }
            prompt(&buffer);
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if trimmed.ends_with(';') {
            run_sql(&buffer, &mut session);
            buffer.clear();
        }
        prompt(&buffer);
    }
}

fn prompt(buffer: &str) {
    if buffer.is_empty() {
        print!("aggview> ");
    } else {
        print!("      -> ");
    }
    let _ = io::stdout().flush();
}

fn run_sql(sql: &str, session: &mut Session) {
    match session.execute(sql) {
        Ok(result) => {
            print!("{}", result.to_table());
            println!(
                "({} rows; measured IO {:.1} pages, estimated cost {:.1})",
                result.rows.len(),
                result.io_pages,
                result.estimated_cost
            );
            if result.outcome.is_degraded() {
                println!("note: {}", result.outcome);
            }
            if result.retries > 0 {
                println!(
                    "note: recovered from {} transient failure(s) by retrying",
                    result.retries
                );
            }
        }
        Err(e) => println!("{e}"),
    }
    drain_events(session);
}

/// Print any view-change events queued for the REPL's subscriber since
/// the last statement. Rounds are consolidated per statement: one event
/// per changed extent row, in group-key order for deletions.
fn drain_events(session: &Session) {
    for ev in session.subs.drain(REPL_SUBSCRIBER) {
        println!("* {ev}");
    }
}

/// The REPL is a single subscriber; SDK users pick their own names.
const REPL_SUBSCRIBER: &str = "repl";

/// Returns false to quit.
fn dot_command(cmd: &str, session: &mut Session) -> bool {
    let parts: Vec<&str> = cmd.splitn(2, ' ').collect();
    match parts[0] {
        ".quit" | ".exit" => return false,
        ".help" => {
            println!(
                ".tables                      list tables\n\
                 .gen empdept [depts emps]    load a fresh Emp/Dept catalog\n\
                 .gen star [customers]        load a TPC-D-like star catalog\n\
                 .mem <pages>                 set the operator memory budget\n\
                 .mode <traditional|pushdown|full>  optimizer configuration\n\
                 .set <key> <value|off>       resource limits: timeout_ms, max_rows,\n\
                 \u{20}                            max_bytes, max_plans, max_memo, retries;\n\
                 \u{20}                            threads (parallel executor workers);\n\
                 \u{20}                            batch_rows (vectorized tile size);\n\
                 \u{20}                            exec_mode <row|batch> (reference vs\n\
                 \u{20}                            vectorized execution);\n\
                 \u{20}                            eager_agg <on|off> (eager partial\n\
                 \u{20}                            aggregation below joins)\n\
                 .limits                      show current resource limits\n\
                 .bench [threads]             executor scaling benchmark (writes BENCH_exec.json)\n\
                 .views                       list materialized views (rows, bytes, staleness)\n\
                 .open <dir>                  switch to a durable catalog at <dir> (WAL +\n\
                 \u{20}                            checkpoints; seeds from the current catalog\n\
                 \u{20}                            when <dir> is empty)\n\
                 .checkpoint                  write a snapshot and truncate the WAL\n\
                 .stats <table>               table/extent statistics (rows, widths, distincts)\n\
                 .subscribe <view>            stream the view's extent changes after each statement\n\
                 .unsubscribe <view>          stop streaming a view\n\
                 .deps                        table -> materialized-view dependency graph\n\
                 .explain <sql>               show the chosen plan without running\n\
                 .lint <sql>                  run the plan-integrity analyzer without running\n\
                 .quit                        leave"
            );
        }
        ".tables" => {
            for name in session.catalog().table_names() {
                let t = session.catalog().get(&name).unwrap();
                println!("{name}{} [{} rows]", t.schema(), t.len());
            }
        }
        ".views" => {
            let cat = session.catalog();
            let names = cat.matview_names();
            if names.is_empty() {
                println!("no materialized views — try CREATE MATERIALIZED VIEW");
            }
            for name in names {
                let Some(meta) = cat.matview(&name) else {
                    continue;
                };
                match cat.get(&meta.extent) {
                    Ok(t) => {
                        let bytes = (t.len() as f64 * t.stats().row_width).round();
                        println!(
                            "{name} -> {} [{} rows, ~{bytes} bytes, {}]",
                            meta.extent,
                            t.len(),
                            if meta.is_stale(cat) { "STALE" } else { "fresh" },
                        );
                    }
                    Err(_) => println!("{name} -> {} [extent missing]", meta.extent),
                }
            }
        }
        ".stats" => match parts.get(1).map(|s| s.trim()) {
            Some(name) if !name.is_empty() => match session.catalog().get(name) {
                Ok(t) => {
                    let s = t.stats();
                    println!(
                        "{name}: {} rows, avg row width {:.1} bytes, stats {}",
                        s.rows,
                        s.row_width,
                        if session.catalog().stats_fresh(name) {
                            "fresh"
                        } else {
                            "STALE"
                        },
                    );
                    for (i, c) in s.columns.iter().enumerate() {
                        let range = match (c.min, c.max) {
                            (Some(lo), Some(hi)) => format!(", range [{lo}, {hi}]"),
                            _ => String::new(),
                        };
                        println!(
                            "  {}: {} distinct, avg width {:.1}{range}",
                            t.schema().field(i).name,
                            c.distinct,
                            c.avg_width,
                        );
                    }
                }
                Err(e) => println!("{e}"),
            },
            _ => println!("usage: .stats <table> (extents are tables: try .views for names)"),
        },
        ".mem" => match parts.get(1).and_then(|s| s.trim().parse::<f64>().ok()) {
            Some(pages) if pages > 0.0 => {
                session.model = CostModel {
                    io: IoParams {
                        mem_pages: pages,
                        ..session.model.io
                    },
                    ..session.model
                };
                println!("memory budget: {pages} pages");
            }
            _ => println!("usage: .mem <pages>"),
        },
        ".mode" => match parts.get(1).map(|s| s.trim()) {
            Some("traditional") => {
                session.config = OptimizerConfig::traditional();
                println!("optimizer: traditional two-phase");
            }
            Some("pushdown") => {
                session.config = OptimizerConfig::push_down_only();
                println!("optimizer: push-down only (greedy conservative)");
            }
            Some("full") => {
                session.config = OptimizerConfig::default();
                println!("optimizer: full (pull-up + push-down)");
            }
            _ => println!("usage: .mode <traditional|pushdown|full>"),
        },
        ".gen" => {
            let args: Vec<&str> = parts
                .get(1)
                .map(|s| s.split_whitespace().collect())
                .unwrap_or_default();
            match args.first().copied() {
                Some("empdept") => {
                    let depts = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100);
                    let emps = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(50);
                    match gen_empdept(&EmpDeptConfig {
                        n_depts: depts,
                        emps_per_dept: emps,
                        ..Default::default()
                    }) {
                        Ok(cat) => {
                            *session = with_settings(session, cat);
                            println!("loaded emp ({} rows) / dept ({depts} rows)", depts * emps);
                        }
                        Err(e) => println!("{e}"),
                    }
                }
                Some("star") => {
                    let customers = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(500);
                    match gen_star(&StarConfig {
                        customers,
                        ..Default::default()
                    }) {
                        Ok(cat) => {
                            *session = with_settings(session, cat);
                            println!("loaded star schema ({customers} customers)");
                        }
                        Err(e) => println!("{e}"),
                    }
                }
                _ => println!("usage: .gen empdept [depts emps] | .gen star [customers]"),
            }
        }
        ".open" => match parts.get(1).map(|s| s.trim()) {
            Some(dir) if !dir.is_empty() => match aggview::storage::Catalog::open(dir) {
                Ok(cat) => {
                    let quarantined = cat.reverify_matviews();
                    if cat.is_empty() && cat.matview_names().is_empty() {
                        match cat.import_from(session.catalog()) {
                            Ok(()) => println!(
                                "seeded {dir} from the current catalog ({} tables)",
                                cat.len()
                            ),
                            Err(e) => {
                                println!("cannot seed {dir}: {e}");
                                return true;
                            }
                        }
                    } else {
                        println!(
                            "recovered {dir}: {} tables, {} materialized views",
                            cat.len(),
                            cat.matview_names().len()
                        );
                        for name in quarantined {
                            println!("note: view `{name}` quarantined (base tables could not be re-verified)");
                        }
                    }
                    *session = with_settings(session, cat);
                }
                Err(e) => println!("{e}"),
            },
            _ => println!("usage: .open <dir>"),
        },
        ".checkpoint" => {
            if !session.is_durable() {
                println!("catalog is in-memory — use .open <dir> first");
            } else {
                match session.checkpoint() {
                    Ok(()) => println!("checkpoint written; WAL truncated"),
                    Err(e) => println!("{e}"),
                }
            }
        }
        ".set" => {
            let args: Vec<&str> = parts
                .get(1)
                .map(|s| s.split_whitespace().collect())
                .unwrap_or_default();
            match (args.first().copied(), args.get(1).copied()) {
                (Some(key), Some(val)) => set_limit(session, key, val),
                _ => println!("usage: .set <key> <value|off> — try .limits for keys"),
            }
        }
        ".limits" => {
            let l = &session.limits;
            let show = |v: Option<u64>| v.map_or("off".to_string(), |n| n.to_string());
            println!(
                "timeout_ms {}  max_rows {}  max_bytes {}  max_plans {}  max_memo {}  retries {}  threads {}  batch_rows {}  exec_mode {}  eager_agg {}",
                l.timeout
                    .map_or("off".to_string(), |t| t.as_millis().to_string()),
                show(l.max_rows),
                show(l.max_bytes),
                show(l.max_plans),
                show(l.max_memo_entries),
                session.max_retries,
                session.exec.threads,
                session.exec.batch_rows,
                mode_name(session.exec.mode),
                if session.config.use_eager_agg {
                    "on"
                } else {
                    "off"
                },
            );
        }
        ".bench" => {
            let threads = parts
                .get(1)
                .and_then(|s| s.trim().parse::<usize>().ok())
                .unwrap_or_else(|| session.exec.threads.max(2));
            println!("running executor benchmark (threads 1 vs {threads}) ...");
            match run_exec_bench(&ExecBenchConfig {
                threads,
                scale: 1,
                repeats: 2,
            }) {
                Ok(report) => {
                    print!("{}", report.summary_table());
                    match std::fs::write("BENCH_exec.json", report.to_json()) {
                        Ok(()) => println!("wrote BENCH_exec.json"),
                        Err(e) => println!("cannot write BENCH_exec.json: {e}"),
                    }
                }
                Err(e) => println!("bench failed: {e}"),
            }
        }
        ".explain" => match parts.get(1) {
            Some(sql) => match session.explain(sql) {
                Ok((text, opt)) => {
                    print!("{text}");
                    println!(
                        "estimated cost: {:.1} pages ({})",
                        opt.props.cost, opt.stats
                    );
                }
                Err(e) => println!("{e}"),
            },
            None => println!("usage: .explain <sql>"),
        },
        ".subscribe" => match parts.get(1).map(|s| s.trim()) {
            Some(view) if !view.is_empty() => {
                if session.catalog().matview(view).is_none() {
                    println!("unknown materialized view `{view}` — try .views");
                } else {
                    session.subs.subscribe(REPL_SUBSCRIBER, view);
                    println!(
                        "subscribed to `{view}` — changes print after each statement \
                         (watching: {})",
                        session.subs.subscriptions(REPL_SUBSCRIBER).join(", ")
                    );
                }
            }
            _ => println!("usage: .subscribe <view>"),
        },
        ".unsubscribe" => match parts.get(1).map(|s| s.trim()) {
            Some(view) if !view.is_empty() => {
                if session.subs.unsubscribe(REPL_SUBSCRIBER, view) {
                    println!("unsubscribed from `{view}`");
                } else {
                    println!("not subscribed to `{view}`");
                }
            }
            _ => println!("usage: .unsubscribe <view>"),
        },
        ".deps" => {
            print!(
                "{}",
                aggview::executor::dependency_graph(session.catalog()).render()
            );
        }
        ".lint" => match parts.get(1) {
            Some(sql) => match session.verify(sql) {
                Ok(result) => {
                    print!("{}", result.plan);
                    print!("{}", result.to_table());
                }
                Err(e) => println!("{e}"),
            },
            None => println!("usage: .lint <sql>"),
        },
        other => println!("unknown command `{other}` — try .help"),
    }
    true
}

fn mode_name(mode: aggview::executor::ExecMode) -> &'static str {
    match mode {
        aggview::executor::ExecMode::Row => "row",
        aggview::executor::ExecMode::Batch => "batch",
    }
}

fn set_limit(session: &mut Session, key: &str, val: &str) {
    if key == "exec_mode" {
        // Not a governor limit: `off` restores the environment default
        // (AGGVIEW_EXEC_MODE, else batch).
        session.exec.mode = match val {
            "row" => aggview::executor::ExecMode::Row,
            "batch" => aggview::executor::ExecMode::Batch,
            _ if val.eq_ignore_ascii_case("off") => aggview::executor::ExecOptions::default().mode,
            other => {
                println!("`{other}` is not an exec mode — row | batch | off");
                return;
            }
        };
        println!("exec_mode = {}", mode_name(session.exec.mode));
        return;
    }
    if key == "eager_agg" {
        // Not a governor limit: `off` disables the plan alternative,
        // `on` re-enables it (the environment default honors
        // AGGVIEW_EAGER_AGG).
        session.config.use_eager_agg = match val {
            "on" | "1" | "true" => true,
            "off" | "0" | "false" => false,
            other => {
                println!("`{other}` is not an eager_agg setting — on | off");
                return;
            }
        };
        println!(
            "eager_agg = {}",
            if session.config.use_eager_agg {
                "on"
            } else {
                "off"
            }
        );
        return;
    }
    let parsed: Option<u64> = if val.eq_ignore_ascii_case("off") {
        None
    } else {
        match val.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                println!("`{val}` is not a number (or `off`)");
                return;
            }
        }
    };
    if key == "threads" {
        // Not a governor limit: `off` restores the environment default.
        session.exec.threads = match parsed {
            Some(n) => (n as usize).max(1),
            None => aggview::executor::ExecOptions::default().threads,
        };
        println!("threads = {}", session.exec.threads);
        return;
    }
    if key == "batch_rows" {
        // Not a governor limit: `off` restores the default tile size.
        session.exec.batch_rows = match parsed {
            Some(n) => (n as usize).max(1),
            None => aggview::executor::ExecOptions::default().batch_rows,
        };
        println!("batch_rows = {}", session.exec.batch_rows);
        return;
    }
    let l = &mut session.limits;
    match key {
        "timeout_ms" => l.timeout = parsed.map(Duration::from_millis),
        "max_rows" => l.max_rows = parsed,
        "max_bytes" => l.max_bytes = parsed,
        "max_plans" => l.max_plans = parsed,
        "max_memo" => l.max_memo_entries = parsed,
        "retries" => match parsed {
            Some(n) => session.max_retries = n as u32,
            None => session.max_retries = 0,
        },
        other => {
            println!("unknown limit `{other}` — keys: timeout_ms max_rows max_bytes max_plans max_memo retries threads batch_rows exec_mode eager_agg");
            return;
        }
    }
    println!(
        "{key} = {}",
        parsed.map_or("off".to_string(), |n| n.to_string())
    );
}

fn with_settings(old: &Session, catalog: aggview::storage::Catalog) -> Session {
    let mut s = Session::new(catalog);
    s.model = old.model;
    s.config = old.config;
    s.limits = old.limits;
    s.max_retries = old.max_retries;
    s.exec = old.exec;
    // Subscriptions survive catalog switches: views with the same name
    // in the new catalog keep streaming.
    s.subs = old.subs.clone();
    s
}
