//! Quickstart: the paper's Example 1, end to end.
//!
//! Builds the Emp/Dept catalog, states the query both ways the paper
//! shows it (aggregate view `A1` + outer block `A2`, and the pulled-up
//! single-block form `B`), lets the cost-based optimizer choose a plan,
//! and executes it.
//!
//! Run with: `cargo run --example quickstart`

use aggview::core::cost::ops::IoParams;
use aggview::core::{optimize, CostModel, OptimizerConfig};
use aggview::sql::Session;
use aggview::storage::datagen::{gen_empdept, EmpDeptConfig};
use std::error::Error;

// AggViewError implements std::error::Error, so `?` composes with any
// other error type behind Box<dyn Error>.
fn main() -> Result<(), Box<dyn Error>> {
    // 1. A synthetic Emp/Dept database: 8000 departments × 2 employees,
    //    0.2% of employees under 22 (the paper's selective predicate) —
    //    the "many departments, few young employees" regime where the
    //    paper predicts pull-up wins.
    let catalog = gen_empdept(&EmpDeptConfig {
        n_depts: 8000,
        emps_per_dept: 2,
        young_fraction: 0.002,
        low_budget_fraction: 0.3,
        seed: 42,
    })?;
    println!(
        "catalog: emp = {} rows, dept = {} rows\n",
        catalog.get("emp")?.len(),
        catalog.get("dept")?.len()
    );

    // 2. The paper's Example 1, verbatim: employees below 22 earning
    //    more than their department's average salary.
    let mut session = Session::new(catalog);
    // Small operator memory makes IO trade-offs visible at this scale.
    let model = CostModel {
        io: IoParams {
            mem_pages: 4.0,
            ..Default::default()
        },
        ..Default::default()
    };
    session.model = model;
    let result = session.execute(
        "create view A1(dno, Asal) as \
               select e2.dno, avg(e2.sal) from emp e2 group by e2.dno; \
             select e1.sal from emp e1, A1 b \
              where e1.dno = b.dno and e1.age < 22 and e1.sal > b.Asal;",
    )?;

    println!("chosen plan (cost-based, pull-up & push-down enabled):");
    println!("{}", result.plan);
    println!(
        "{} qualifying employees, measured IO = {:.1} pages, estimated cost = {:.1}\n",
        result.rows.len(),
        result.io_pages,
        result.estimated_cost
    );
    let preview = result.rows.len().min(5);
    println!("first {preview} rows:\n{}", {
        let mut r = result.clone();
        r.rows.truncate(preview);
        r.to_table()
    });

    // 3. Compare the optimizer's choice with the traditional two-phase
    //    optimizer on the same canonical query.
    let (bound, full) = session.plan(
        "select e1.sal from emp e1, A1 b \
              where e1.dno = b.dno and e1.age < 22 and e1.sal > b.Asal",
    )?;
    let trad = optimize(
        &bound.query,
        session.catalog(),
        model,
        &OptimizerConfig::traditional(),
    )?;
    println!(
        "estimated cost — full optimizer: {:.1} pages, traditional: {:.1} pages ({}×)",
        full.props.cost,
        trad.props.cost,
        (trad.props.cost / full.props.cost * 10.0).round() / 10.0
    );
    if full.pulled.iter().any(|w| !w.is_empty()) {
        println!("the chosen plan pulls base relations through the view (Section 3 pull-up)");
    } else {
        println!("the chosen plan keeps the view boundary (pull-up not beneficial here)");
    }
    Ok(())
}
