//! The paper's Example 1 crossover, demonstrated.
//!
//! "Note that if there are many departments but few employees are
//! younger than 22 years, then the query B may be more efficient to
//! evaluate than A1 and A2. However, if there are few departments but
//! many employees below 22 years old, then execution of A1 and A2 may
//! be significantly less expensive."
//!
//! This example builds the two extreme databases, executes the
//! traditional (A1/A2-style) and pull-up (B-style) plans on both under a
//! small memory budget, and prints the measured IO — the crossover the
//! cost-based optimizer navigates automatically.
//!
//! Run with: `cargo run --example employee_salaries`

use aggview::core::cost::ops::IoParams;
use aggview::core::query::examples::example1_query;
use aggview::core::{optimize, CostModel, OptimizerConfig};
use aggview::executor::Engine;
use aggview::storage::datagen::{gen_empdept, EmpDeptConfig};

fn main() {
    let model = CostModel {
        io: IoParams {
            mem_pages: 8.0,
            ..Default::default()
        },
        ..Default::default()
    };

    let scenarios = [
        (
            "many departments, FEW young employees (paper: B wins)",
            EmpDeptConfig {
                n_depts: 4000,
                emps_per_dept: 5,
                young_fraction: 0.005,
                low_budget_fraction: 0.3,
                seed: 1,
            },
        ),
        (
            "few departments, MANY young employees (paper: A1/A2 wins)",
            EmpDeptConfig {
                n_depts: 5,
                emps_per_dept: 600,
                young_fraction: 0.6,
                low_budget_fraction: 0.3,
                seed: 2,
            },
        ),
    ];

    println!(
        "{:<58} {:>12} {:>12} {:>12}",
        "scenario", "traditional", "full-opt", "chosen"
    );
    for (label, cfg) in scenarios {
        let catalog = gen_empdept(&cfg).expect("catalog");
        let q = example1_query();
        let engine = Engine::new(&catalog, &q.env, model);

        let trad =
            optimize(&q, &catalog, model, &OptimizerConfig::traditional()).expect("traditional");
        let full = optimize(&q, &catalog, model, &OptimizerConfig::default()).expect("full");
        let trad_io = engine.execute(&trad.plan).expect("exec trad").io_pages;
        let full_io = engine.execute(&full.plan).expect("exec full").io_pages;
        let chosen = if full.pulled.iter().any(|w| !w.is_empty()) {
            "pull-up (B)"
        } else {
            "view (A1/A2)"
        };
        println!("{label:<58} {trad_io:>10.1}p {full_io:>10.1}p {chosen:>12}");
        assert!(
            full_io <= trad_io + 1e-6,
            "cost-based choice must not lose to the traditional plan"
        );
    }

    println!("\nThe optimizer picks each side of the paper's trade-off where it wins.");
}
