//! Decision-support queries over a TPC-D-like star schema.
//!
//! The paper motivates its problem with TPC-D-style decision support:
//! "Complex queries, with views containing aggregates and nested
//! subqueries, are important in decision-support applications." This
//! example runs three such queries over the synthetic star schema
//! (region → nation → customer → orders → lineitem) and reports, for
//! each, the optimizer's chosen plan and its measured IO against the
//! traditional two-phase optimizer.
//!
//! Run with: `cargo run --example decision_support`

use aggview::core::cost::ops::IoParams;
use aggview::core::{optimize, CostModel, OptimizerConfig};
use aggview::executor::Engine;
use aggview::sql::Session;
use aggview::storage::datagen::{gen_star, StarConfig};

fn main() {
    let catalog = gen_star(&StarConfig {
        customers: 800,
        orders_per_customer: 6,
        lines_per_order: 4,
        nations: 25,
        seed: 7,
    })
    .expect("star schema");
    println!(
        "star schema: {} customers, {} orders, {} line items\n",
        catalog.get("customer").unwrap().len(),
        catalog.get("orders").unwrap().len(),
        catalog.get("lineitem").unwrap().len()
    );

    let model = CostModel {
        io: IoParams {
            mem_pages: 16.0,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut session = Session::new(catalog);
    session.model = model;

    let queries: [(&str, &str); 3] = [
        (
            "Q1: big spenders — customers whose total order volume exceeds \
             their nation's average customer balance",
            "create view nation_bal(nno, avg_bal) as \
               select c2.nno, avg(c2.acctbal) from customer c2 group by c2.nno; \
             select c.cname, c.acctbal from customer c, nation_bal nb \
              where c.nno = nb.nno and c.acctbal > nb.avg_bal and c.acctbal > 5000;",
        ),
        (
            "Q2: revenue per returned order (aggregate view joined to a \
             selective dimension)",
            "create view order_rev(ono, rev) as \
               select l.ono, sum(l.price) from lineitem l group by l.ono; \
             select o.ono, r.rev from orders o, order_rev r \
              where o.ono = r.ono and o.status = 'returned' and r.rev > 10000;",
        ),
        (
            "Q3: per-customer order counts for the automobile segment \
             (single block with group-by)",
            "select c.cno, count(*) from customer c, orders o \
              where c.cno = o.cno and c.segment = 'automobile' \
              group by c.cno",
        ),
    ];

    for (label, sql) in queries {
        println!("=== {label}");
        let result = session.execute(sql).expect("execute");
        let (bound, _) = session.plan(sql).expect("plan");
        let trad = optimize(
            &bound.query,
            session.catalog(),
            model,
            &OptimizerConfig::traditional(),
        )
        .expect("traditional");
        let engine = Engine::new(session.catalog(), &bound.query.env, model);
        let trad_io = engine.execute(&trad.plan).expect("exec").io_pages;
        println!("{}", result.plan);
        println!(
            "rows = {}, measured IO = {:.1}p (traditional plan: {:.1}p)\n",
            result.rows.len(),
            result.io_pages,
            trad_io
        );
        assert!(result.io_pages <= trad_io * 1.05 + 1.0);
    }
}
