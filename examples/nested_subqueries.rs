//! Correlated nested subqueries: flatten, then optimize.
//!
//! The paper's Section 1: optimizing queries with aggregate views "also
//! directly bears upon the problem of optimizing queries with nested
//! subqueries", via Kim-style flattening. This example takes the
//! correlated form of Example 1, evaluates it three ways, and compares
//! measured IO:
//!
//! 1. **naive correlated execution** — one inner scan per outer tuple
//!    (what a system without flattening does on an unindexed table);
//! 2. **flattened + traditional optimizer** — Kim's transformation
//!    produces a join with an aggregate view, optimized block-by-block;
//! 3. **flattened + this paper's optimizer** — pull-up/push-down
//!    enabled.
//!
//! Run with: `cargo run --example nested_subqueries`

use aggview::core::cost::ops::IoParams;
use aggview::core::{optimize, CostModel, OptimizerConfig};
use aggview::executor::correlated::{execute_correlated, CorrelatedQuery};
use aggview::executor::Engine;
use aggview::sql::Session;
use aggview::storage::datagen::{gen_empdept, EmpDeptConfig};
use aggview::{CmpOp, Col, Predicate, RelId, Value};

fn main() {
    let cfg = EmpDeptConfig {
        n_depts: 100,
        emps_per_dept: 30,
        young_fraction: 0.15,
        low_budget_fraction: 0.3,
        seed: 9,
    };
    let catalog = gen_empdept(&cfg).expect("catalog");
    let model = CostModel {
        io: IoParams {
            mem_pages: 16.0,
            ..Default::default()
        },
        ..Default::default()
    };

    let sql = "select e1.sal from emp e1 where e1.age < 22 and \
               e1.sal > (select avg(e2.sal) from emp e2 where e2.dno = e1.dno)";
    println!("query:\n  {sql}\n");

    // (1) Naive correlated execution.
    let corr = CorrelatedQuery {
        outer: "emp".into(),
        inner: "emp".into(),
        outer_filters: vec![Predicate::cmp_const(
            Col::base(RelId(0), 4),
            CmpOp::Lt,
            Value::Int(22),
        )],
        corr_outer: 2,
        corr_inner: 2,
        cmp_col: 3,
        op: CmpOp::Gt,
        agg: aggview::AggFunc::Avg,
        agg_col: 3,
        project: vec![3],
    };
    let naive = execute_correlated(&corr, &catalog, &model).expect("correlated");
    println!(
        "(1) naive correlated evaluation: {} rows, {} inner scans, {:.1} pages",
        naive.rows.len(),
        naive.inner_scans,
        naive.io_pages
    );

    // (2)/(3) Flatten via the SQL frontend, optimize both ways.
    let mut session = Session::new(catalog);
    session.model = model;
    let (bound, _) = session.plan(sql).expect("bind+flatten");
    println!(
        "    flattening produced {} aggregate view(s) (Kim type-JA)",
        bound.query.views.len()
    );

    let engine = Engine::new(session.catalog(), &bound.query.env, model);
    let trad = optimize(
        &bound.query,
        session.catalog(),
        model,
        &OptimizerConfig::traditional(),
    )
    .expect("traditional");
    let trad_rs = engine.execute(&trad.plan).expect("exec traditional");
    println!(
        "(2) flattened, traditional optimizer: {} rows, {:.1} pages",
        trad_rs.rows.len(),
        trad_rs.io_pages
    );

    let full = optimize(
        &bound.query,
        session.catalog(),
        model,
        &OptimizerConfig::default(),
    )
    .expect("full");
    let full_rs = engine.execute(&full.plan).expect("exec full");
    println!(
        "(3) flattened, aggregate-view optimizer: {} rows, {:.1} pages",
        full_rs.rows.len(),
        full_rs.io_pages
    );

    assert_eq!(naive.rows.len(), trad_rs.rows.len());
    assert_eq!(naive.rows.len(), full_rs.rows.len());
    println!(
        "\nspeedup over naive: traditional {:.0}×, this paper {:.0}×",
        naive.io_pages / trad_rs.io_pages,
        naive.io_pages / full_rs.io_pages
    );
}
