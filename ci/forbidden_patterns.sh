#!/usr/bin/env bash
# Forbidden-patterns lint: non-test library code must not call
# `.unwrap()`, `.expect(` or `panic!` — failures flow through `Result`
# as structured `AggViewError`s so every caller can handle them.
#
# `#[cfg(test)]` modules are stripped before matching (the attribute
# plus the brace-balanced block, or single `;`-terminated item, that
# follows it), and the `src/bin` trees are out of scope: binaries own
# the process and may abort it. The few justified remaining uses are
# allowlisted in ci/forbidden_patterns_allowlist.txt — each
# non-comment line there is an extended regex matched against the
# whole `path:line: code` record.
set -euo pipefail
cd "$(dirname "$0")/.."

allow="ci/forbidden_patterns_allowlist.txt"

hits=$(
    for f in $(find crates/*/src src -name '*.rs' ! -path '*/bin/*' | sort); do
        awk -v FNAME="$f" '
            /#\[cfg\(test\)\]/ { intest = 1; started = 0; depth = 0; next }
            intest {
                n = gsub(/\{/, "{"); m = gsub(/\}/, "}")
                if (n > 0) started = 1
                depth += n - m
                if (!started && /;/) { intest = 0 }
                else if (started && depth <= 0) { intest = 0; started = 0 }
                next
            }
            /^[[:space:]]*\/\// { next }
            /\.unwrap\(\)|\.expect\(|panic!/ { print FNAME ":" NR ": " $0 }
        ' "$f"
    done | grep -Ev -f <(grep -Ev '^(#|[[:space:]]*$)' "$allow") || true
)

if [ -n "$hits" ]; then
    echo "forbidden patterns in non-test library code (unwrap/expect/panic!):" >&2
    echo "$hits" >&2
    echo "route the failure through Result/AggViewError, or add a justified" >&2
    echo "entry to $allow" >&2
    exit 1
fi
echo "forbidden-patterns lint: ok"
