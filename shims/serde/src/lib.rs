//! Offline stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize)]` as an annotation on a
//! few statistics structs; nothing actually serializes through serde
//! yet. This shim provides the trait names plus a no-op derive macro so
//! those annotations compile without registry access. When real
//! serialization lands, replace this with the genuine crate.

/// Marker matching `serde::Serialize`'s name; the vendored derive emits
/// no impl, so nothing can (yet) require this bound at runtime.
pub trait Serialize {}

/// Marker matching `serde::Deserialize`'s name.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;
