//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives while matching `parking_lot`'s
//! non-poisoning API (`read()`/`write()`/`lock()` return guards
//! directly, recovering the data from a poisoned lock instead of
//! propagating a `PoisonError`).

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with `parking_lot`'s panic-free guard API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Mutex with `parking_lot`'s panic-free guard API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.lock().len(), 3);
    }

    #[test]
    fn debug_does_not_deadlock() {
        let l = RwLock::new(5i32);
        let _w = l.write();
        let s = format!("{l:?}");
        assert!(s.contains("locked"));
    }
}
