//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion API the workspace's benches
//! use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `Throughput`, `BenchmarkId`, the `criterion_group!`
//! / `criterion_main!` macros). Instead of statistical sampling it runs
//! each benchmark body a fixed number of iterations and reports mean
//! wall-clock time — enough to execute the bench targets end to end and
//! get a rough number, without registry access.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations per benchmark; deliberately small — the vendored harness
/// smoke-runs benches rather than measuring them rigorously.
const DEFAULT_ITERS: u64 = 10;

/// Identifies a benchmark within a group, e.g. `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Throughput annotation; accepted and ignored by the vendored harness.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / iters.max(1) as f64;
    println!("bench {label:<56} {:>12.3} µs/iter", mean * 1e6);
}

/// Top-level harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: DEFAULT_ITERS,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Criterion {
        run_one(&id.into_benchmark_id(), DEFAULT_ITERS, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion's sample count maps loosely onto our iteration count.
        self.iters = (n as u64).clamp(1, 100);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.iters, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.iters, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_labels() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3)
                .throughput(Throughput::Elements(10))
                .bench_function("f", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("param", 42), &5u64, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert_eq!(ran, 3);
    }
}
