//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors a minimal, deterministic implementation of the API
//! surface it actually uses: `StdRng::seed_from_u64`, `gen_range` over
//! integer/float ranges, `gen_bool`, and `gen::<f64>()`.
//!
//! The generator is SplitMix64 — not cryptographic, but statistically
//! fine for data generation and fully deterministic for a given seed,
//! which is all the datagen and test layers require.

use std::ops::{Range, RangeInclusive};

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high-quality mantissa bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Core entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `seed_from_u64` entry point is vendored).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable from the uniform "standard" distribution.
pub trait Standard: Sized {
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn from_rng(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Pre-mix so nearby seeds diverge immediately.
            let mut state = seed ^ 0x5851_F42D_4C95_7F2D;
            splitmix64(&mut state);
            StdRng { state }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
