//! No-op derive backing the vendored serde shim: accepts the
//! `#[derive(Serialize)]` annotation and emits nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
