//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so the workspace
//! vendors a small, deterministic property-testing harness covering the
//! API surface its tests use: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), range strategies over the numeric
//! types, `collection::vec`, `sample::select`, and the `prop_assert*`
//! macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: cases are drawn from a SplitMix64 stream keyed by the fully
//! qualified test name and case index, so every run explores the same
//! deterministic schedule — failures are therefore always reproducible.

pub mod test_runner {
    /// Run-time configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Real proptest defaults to 256; this harness has no
            // shrinking, so favour a faster deterministic sweep.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 stream keyed by test name + case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(test_name: &str, case: u32) -> TestRng {
            // FNV-1a over the test name gives each test its own stream;
            // mixing in the case index separates cases within a test.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for producing values; the vendored harness samples
    /// directly instead of building shrinkable value trees.
    pub trait Strategy {
        type Value;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample_value(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    /// Strategy yielding one of a fixed set of options (see
    /// [`crate::sample::select`]).
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        pub(crate) options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select over empty options");
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Strategy yielding vectors of an element strategy (see
    /// [`crate::collection::vec`]).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample_value(rng);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// `vec(element, len_range)`: vectors whose length is drawn from
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod sample {
    use crate::strategy::Select;

    /// `select(options)`: one of the given values, uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }
}

pub mod prelude {
    /// Mirrors `proptest::prelude::prop`, the crate-root alias used for
    /// paths like `prop::sample::select`.
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines deterministic property tests. Supports the same shape the
/// real macro accepts for this workspace's tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_property(x in 0i64..100, v in proptest::collection::vec(0u32..9, 1..20)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::sample_value(&($strat), &mut __rng);
                )*
                $body
            }
        }
    )*};
}

/// `assert!` that reports through the property-test harness. With no
/// shrinking, this is a plain assertion.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_in_bounds(
            x in -50i64..50,
            u in 1usize..10,
            f in -2.5f64..2.5,
            pick in prop::sample::select(vec![1u32, 2, 3]),
            v in crate::collection::vec(0i64..5, 2..8),
        ) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..10).contains(&u));
            prop_assert!((-2.5..2.5).contains(&f));
            prop_assert!((1..=3).contains(&pick));
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(v.iter().all(|e| (0..5).contains(e)));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }
}
